"""The versioned public API schema: typed requests, responses, and errors.

Everything that crosses a process boundary — the TCP protocol of
:mod:`repro.api.transport`, the ``--json`` CLI modes, and the in-process
:class:`repro.api.service.DatalogService` dispatch — is one of the frozen
dataclasses below, serialized to JSON through :func:`encode_request` /
:func:`encode_response` and validated field-by-field on the way back in.

Three rules keep the wire contract stable:

* **Schema versioning.**  Every message carries ``"v": 1``
  (:data:`SCHEMA_VERSION`).  A server rejects messages from the future with
  the stable error code :data:`ErrorCode.UNSUPPORTED_VERSION` (naming its
  supported versions), so an old server fails a new client loudly instead
  of misinterpreting it; new servers keep decoding every older version
  they ever supported.
* **Typed errors only.**  No internal exception crosses the wire raw:
  :meth:`ApiError.from_exception` maps the whole :mod:`repro.errors`
  hierarchy (and any stray exception) to a stable error code plus
  field-level details, and :meth:`ApiError.raise_` re-raises the matching
  library exception client-side, so remote and in-process callers catch
  the very same types (``UnknownPredicateError``, ``SessionPoisonedError``,
  ``ParseError`` with line/column, ...).
* **Field-level validation.**  Malformed requests are rejected before any
  engine code runs, with messages naming the offending field —
  ``facts[2].values[0]: expected a string, got int`` — under the
  :data:`ErrorCode.VALIDATION` (shape) or :data:`ErrorCode.BAD_REQUEST`
  (envelope) codes.

The schema is additive-only within a version: servers may add response
fields (clients must ignore unknown keys), but renaming or retyping a
field requires bumping :data:`SCHEMA_VERSION`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.analysis.diagnostics import DiagnosticReport
from repro.engine.query import QueryResult, ResultWindow
from repro.errors import (
    AlphabetError,
    CorruptLogError,
    CorruptSnapshotError,
    EvaluationError,
    FixpointNotReached,
    LagTimeoutError,
    MultiValuedOutputError,
    NetworkError,
    NotLeaderError,
    ParseError,
    ProtocolError,
    RemoteApiError,
    ReplicationError,
    ReproError,
    SafetyError,
    SequenceIndexError,
    SessionPoisonedError,
    SlowConsumerError,
    StorageError,
    TransducerError,
    TuringMachineError,
    UnknownPredicateError,
    ValidationError,
)

#: The current wire schema version.  Bump only on a breaking change; the
#: decoder must keep accepting every version it ever shipped.
SCHEMA_VERSION = 1

#: Every schema version this library can decode.
SUPPORTED_VERSIONS: Tuple[int, ...] = (1,)


class ErrorCode:
    """Stable error codes of the versioned API (string constants).

    The codes are part of the wire contract: clients dispatch on them, so
    they never change meaning and are only ever added to.
    """

    PARSE = "parse_error"
    VALIDATION = "validation_error"
    SAFETY = "safety_error"
    ALPHABET = "alphabet_error"
    SEQUENCE_INDEX = "sequence_index_error"
    UNKNOWN_PREDICATE = "unknown_predicate"
    LIMIT_EXCEEDED = "limit_exceeded"
    SESSION_POISONED = "session_poisoned"
    MULTI_VALUED_OUTPUT = "multi_valued_output"
    NETWORK = "transducer_network_error"
    TRANSDUCER = "transducer_error"
    TURING = "turing_machine_error"
    EVALUATION = "evaluation_error"
    STORAGE = "storage_error"
    CORRUPT_LOG = "corrupt_log"
    CORRUPT_SNAPSHOT = "corrupt_snapshot"
    PROTOCOL = "protocol_error"
    BAD_REQUEST = "bad_request"
    UNSUPPORTED_VERSION = "unsupported_version"
    UNKNOWN_CURSOR = "unknown_cursor"
    NOT_LEADER = "not_leader"
    LAG_TIMEOUT = "lag_timeout"
    REPLICATION = "replication_error"
    SLOW_CONSUMER = "slow_consumer"
    INTERNAL = "internal_error"


#: Exception -> code, most specific type first (the first match wins).
_EXCEPTION_CODES: Tuple[Tuple[type, str], ...] = (
    (SessionPoisonedError, ErrorCode.SESSION_POISONED),
    (MultiValuedOutputError, ErrorCode.MULTI_VALUED_OUTPUT),
    (UnknownPredicateError, ErrorCode.UNKNOWN_PREDICATE),
    (FixpointNotReached, ErrorCode.LIMIT_EXCEEDED),
    (ParseError, ErrorCode.PARSE),
    (ValidationError, ErrorCode.VALIDATION),
    (SafetyError, ErrorCode.SAFETY),
    (AlphabetError, ErrorCode.ALPHABET),
    (SequenceIndexError, ErrorCode.SEQUENCE_INDEX),
    (NetworkError, ErrorCode.NETWORK),
    (TransducerError, ErrorCode.TRANSDUCER),
    (TuringMachineError, ErrorCode.TURING),
    (CorruptLogError, ErrorCode.CORRUPT_LOG),
    (CorruptSnapshotError, ErrorCode.CORRUPT_SNAPSHOT),
    (StorageError, ErrorCode.STORAGE),
    (NotLeaderError, ErrorCode.NOT_LEADER),
    (LagTimeoutError, ErrorCode.LAG_TIMEOUT),
    (ReplicationError, ErrorCode.REPLICATION),
    (SlowConsumerError, ErrorCode.SLOW_CONSUMER),
    (ProtocolError, ErrorCode.PROTOCOL),
    (EvaluationError, ErrorCode.EVALUATION),
    (ReproError, ErrorCode.INTERNAL),
)

#: Code -> exception class raised client-side, derived from the forward
#: table so the two can never drift (codes without an entry — the
#: envelope-level ones plus ``internal_error`` — raise
#: :class:`~repro.errors.RemoteApiError` carrying the code).
_CODE_EXCEPTIONS: Dict[str, Type[Exception]] = {
    code: exception_type
    for exception_type, code in reversed(_EXCEPTION_CODES)
    if code != ErrorCode.INTERNAL
}


@dataclass(frozen=True)
class ApiError:
    """A typed API failure with a stable code and field-level details.

    ``details`` carries machine-readable context: ``{"field": ...}`` for
    validation failures, ``{"line": ..., "column": ...}`` for parse errors,
    ``{"supported": [...]}`` for version rejections, ``{"iterations": ...}``
    for resource-limit failures.
    """

    code: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_exception(cls, error: BaseException) -> ApiError:
        """Map any exception to its stable wire representation.

        Library exceptions get their dedicated code; anything else (a bug)
        becomes :data:`ErrorCode.INTERNAL` carrying only the exception type
        name — never a traceback.
        """
        if isinstance(error, RemoteApiError):
            return cls(code=error.code, message=str(error), details=error.details)
        details: Dict[str, Any] = {}
        if isinstance(error, ParseError) and error.line:
            details = {"line": error.line, "column": error.column}
        elif isinstance(error, FixpointNotReached):
            details = {"iterations": error.iterations}
        elif isinstance(error, NotLeaderError):
            # The redirect target: clients re-send the write there.
            details = {"leader": error.leader}
        for exception_type, code in _EXCEPTION_CODES:
            if isinstance(error, exception_type):
                return cls(code=code, message=str(error), details=details)
        return cls(
            code=ErrorCode.INTERNAL,
            message=f"internal error ({type(error).__name__}): {error}",
            details={"exception": type(error).__name__},
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "details": dict(self.details),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> ApiError:
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"error payload must be an object, got {payload!r}")
        code = payload.get("code")
        message = payload.get("message")
        if not isinstance(code, str) or not isinstance(message, str):
            raise ProtocolError("error payload needs string 'code' and 'message'")
        details = payload.get("details", {})
        return cls(
            code=code,
            message=message,
            details=dict(details) if isinstance(details, Mapping) else {},
        )

    def raise_(self) -> None:
        """Re-raise this error as the library exception its code names.

        Remote callers therefore catch the exact same exception types as
        in-process callers; codes without a library exception raise
        :class:`~repro.errors.RemoteApiError` with the code attached.
        """
        exception = _CODE_EXCEPTIONS.get(self.code)
        if exception is ParseError:
            # The message already carries the rendered location (line=0
            # stops the constructor from appending it a second time), but
            # the structured attributes must survive the wire too.
            error = ParseError(self.message)
            error.line = int(self.details.get("line", 0) or 0)
            error.column = int(self.details.get("column", 0) or 0)
            raise error
        if exception is FixpointNotReached:
            raise FixpointNotReached(
                self.message,
                iterations=int(self.details.get("iterations", 0) or 0),
            )
        if exception is NotLeaderError:
            raise NotLeaderError(
                self.message, leader=str(self.details.get("leader", "") or "")
            )
        if exception is not None:
            raise exception(self.message)
        raise RemoteApiError(self.message, code=self.code, details=self.details)


# ----------------------------------------------------------------------
# Field validation helpers (shared by every request decoder)
# ----------------------------------------------------------------------
def _bad(field_name: str, message: str) -> RemoteApiError:
    return RemoteApiError(
        f"{field_name}: {message}",
        code=ErrorCode.VALIDATION,
        details={"field": field_name},
    )


def _type_name(value: Any) -> str:
    return type(value).__name__


def _string_field(payload: Mapping[str, Any], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str):
        raise _bad(name, f"expected a string, got {_type_name(value)}")
    if not value.strip():
        raise _bad(name, "must not be empty")
    return value


def _bool_field(payload: Mapping[str, Any], name: str, default: bool = False) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise _bad(name, f"expected a boolean, got {_type_name(value)}")
    return value


def _page_size_field(payload: Mapping[str, Any], name: str = "page_size") -> Optional[int]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(name, f"expected a positive integer or null, got {_type_name(value)}")
    if value < 1:
        raise _bad(name, f"expected a positive integer, got {value}")
    return value


def _decode_facts(payload: Mapping[str, Any]) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    raw = payload.get("facts")
    if not isinstance(raw, (list, tuple)):
        raise _bad("facts", f"expected a list of [predicate, [values...]] pairs, "
                            f"got {_type_name(raw)}")
    facts: List[Tuple[str, Tuple[str, ...]]] = []
    for index, entry in enumerate(raw):
        where = f"facts[{index}]"
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise _bad(where, "expected a [predicate, [values...]] pair")
        predicate, values = entry
        if not isinstance(predicate, str) or not predicate:
            raise _bad(
                f"{where}.predicate",
                f"expected a non-empty string, got {_type_name(predicate)}",
            )
        if not isinstance(values, (list, tuple)) or not values:
            raise _bad(
                f"{where}.values",
                f"expected a non-empty list of strings, got {values!r}",
            )
        for position, value in enumerate(values):
            if not isinstance(value, str):
                raise _bad(
                    f"{where}.values[{position}]",
                    f"expected a string, got {_type_name(value)}",
                )
        facts.append((predicate, tuple(values)))
    return tuple(facts)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """Answer one pattern, optionally paged through a server-side cursor.

    ``min_generation`` opts into read-your-writes on a replicated fleet:
    the serving node blocks (up to ``min_generation_timeout`` seconds,
    server default when ``None``) until its published generation reaches
    the bound, answering with :data:`ErrorCode.LAG_TIMEOUT` instead of
    stale data if it cannot catch up in time.
    """

    op: ClassVar[str] = "query"

    pattern: str
    strict: bool = False
    page_size: Optional[int] = None
    include_witnesses: bool = False
    min_generation: Optional[int] = None
    min_generation_timeout: Optional[float] = None

    def validate(self) -> None:
        if not isinstance(self.pattern, str) or not self.pattern.strip():
            raise _bad("pattern", "must be a non-empty string")
        if self.page_size is not None and (
            isinstance(self.page_size, bool)
            or not isinstance(self.page_size, int)
            or self.page_size < 1
        ):
            raise _bad("page_size", "must be a positive integer or None")
        if self.min_generation is not None and (
            isinstance(self.min_generation, bool)
            or not isinstance(self.min_generation, int)
            or self.min_generation < 0
        ):
            raise _bad("min_generation", "must be a non-negative integer or None")
        if self.min_generation_timeout is not None and (
            isinstance(self.min_generation_timeout, bool)
            or not isinstance(self.min_generation_timeout, (int, float))
            or self.min_generation_timeout < 0
        ):
            raise _bad(
                "min_generation_timeout",
                "must be a non-negative number or None",
            )

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"pattern": self.pattern, "strict": self.strict}
        if self.page_size is not None:
            payload["page_size"] = self.page_size
        if self.include_witnesses:
            payload["include_witnesses"] = True
        if self.min_generation is not None:
            payload["min_generation"] = self.min_generation
        if self.min_generation_timeout is not None:
            payload["min_generation_timeout"] = self.min_generation_timeout
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> QueryRequest:
        min_generation = payload.get("min_generation")
        if min_generation is not None and (
            isinstance(min_generation, bool)
            or not isinstance(min_generation, int)
            or min_generation < 0
        ):
            raise _bad(
                "min_generation",
                f"expected a non-negative integer or null, got {min_generation!r}",
            )
        timeout = payload.get("min_generation_timeout")
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or timeout < 0
        ):
            raise _bad(
                "min_generation_timeout",
                f"expected a non-negative number or null, got {timeout!r}",
            )
        return cls(
            pattern=_string_field(payload, "pattern"),
            strict=_bool_field(payload, "strict"),
            page_size=_page_size_field(payload),
            include_witnesses=_bool_field(payload, "include_witnesses"),
            min_generation=min_generation,
            min_generation_timeout=timeout,
        )


@dataclass(frozen=True)
class FetchRequest:
    """Pull the next page of an open cursor."""

    op: ClassVar[str] = "fetch"

    cursor: str

    def to_payload(self) -> Dict[str, Any]:
        return {"cursor": self.cursor}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> FetchRequest:
        return cls(cursor=_string_field(payload, "cursor"))


@dataclass(frozen=True)
class CloseCursorRequest:
    """Release a cursor before it is exhausted (early stream termination)."""

    op: ClassVar[str] = "close_cursor"

    cursor: str

    def to_payload(self) -> Dict[str, Any]:
        return {"cursor": self.cursor}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> CloseCursorRequest:
        return cls(cursor=_string_field(payload, "cursor"))


@dataclass(frozen=True)
class AddFactsRequest:
    """Insert base facts; the server restores the fixpoint before replying."""

    op: ClassVar[str] = "add_facts"

    facts: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def validate(self) -> None:
        _decode_facts({"facts": [list((p, list(v))) for p, v in self.facts]})

    def to_payload(self) -> Dict[str, Any]:
        return {"facts": [[predicate, list(values)] for predicate, values in self.facts]}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> AddFactsRequest:
        return cls(facts=_decode_facts(payload))


@dataclass(frozen=True)
class BatchRequest:
    """Answer many patterns against one consistent snapshot."""

    op: ClassVar[str] = "batch"

    patterns: Tuple[str, ...]
    strict: bool = False

    def to_payload(self) -> Dict[str, Any]:
        return {"patterns": list(self.patterns), "strict": self.strict}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> BatchRequest:
        raw = payload.get("patterns")
        if not isinstance(raw, (list, tuple)):
            raise _bad("patterns", f"expected a list of strings, got {_type_name(raw)}")
        patterns = []
        for index, pattern in enumerate(raw):
            if not isinstance(pattern, str) or not pattern.strip():
                raise _bad(f"patterns[{index}]", "expected a non-empty string")
            patterns.append(pattern)
        return cls(patterns=tuple(patterns), strict=_bool_field(payload, "strict"))


@dataclass(frozen=True)
class ExplainRequest:
    """The server's compiled evaluation plan, as text."""

    op: ClassVar[str] = "explain"

    def to_payload(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> ExplainRequest:
        return cls()


@dataclass(frozen=True)
class LintRequest:
    """Run the server's diagnostics engine over its loaded program.

    ``patterns`` are optional query atoms (``"answer(X)"``) that sharpen
    the arity-conflict and dead-clause rules with how the program is
    actually queried.
    """

    op: ClassVar[str] = "lint"

    patterns: Tuple[str, ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.patterns:
            payload["patterns"] = list(self.patterns)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> LintRequest:
        raw = payload.get("patterns", [])
        if not isinstance(raw, (list, tuple)):
            raise _bad("patterns", f"expected a list of strings, got {_type_name(raw)}")
        patterns = []
        for index, pattern in enumerate(raw):
            if not isinstance(pattern, str) or not pattern.strip():
                raise _bad(f"patterns[{index}]", "expected a non-empty string")
            patterns.append(pattern)
        return cls(patterns=tuple(patterns))


@dataclass(frozen=True)
class StatsRequest:
    """Schema-stable serving diagnostics."""

    op: ClassVar[str] = "stats"

    def to_payload(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> StatsRequest:
        return cls()


@dataclass(frozen=True)
class PingRequest:
    """Version negotiation / liveness probe."""

    op: ClassVar[str] = "ping"

    def to_payload(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> PingRequest:
        return cls()


@dataclass(frozen=True)
class SubscribeRequest:
    """Enter the replication stream: the connection switches to server-push.

    A follower opens a dedicated connection and subscribes once; the
    server replies with a :class:`HelloResponse` and then pushes frames
    for as long as the connection lives — :class:`SnapshotFrame` chunks
    for a bootstrap, :class:`GenerationFrame` per published generation,
    :class:`HeartbeatFrame` while idle.  ``from_generation=None`` asks
    for a full snapshot bootstrap; an integer asks for incremental
    catch-up from that generation (the server answers with the stable
    code :data:`ErrorCode.REPLICATION` and ``details.bootstrap_required``
    when its log no longer covers it).  ``fingerprint`` optionally
    pins the program identity (SHA-256 of the canonical program text);
    a mismatch is refused before any state ships.
    """

    op: ClassVar[str] = "subscribe"

    from_generation: Optional[int] = None
    fingerprint: Optional[str] = None
    follower_id: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.from_generation is not None:
            payload["from_generation"] = self.from_generation
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if self.follower_id is not None:
            payload["follower_id"] = self.follower_id
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> SubscribeRequest:
        from_generation = payload.get("from_generation")
        if from_generation is not None and (
            isinstance(from_generation, bool)
            or not isinstance(from_generation, int)
            or from_generation < 0
        ):
            raise _bad(
                "from_generation",
                f"expected a non-negative integer or null, got {from_generation!r}",
            )
        fingerprint = payload.get("fingerprint")
        if fingerprint is not None and not isinstance(fingerprint, str):
            raise _bad(
                "fingerprint", f"expected a string or null, got {_type_name(fingerprint)}"
            )
        follower_id = payload.get("follower_id")
        if follower_id is not None and not isinstance(follower_id, str):
            raise _bad(
                "follower_id", f"expected a string or null, got {_type_name(follower_id)}"
            )
        return cls(
            from_generation=from_generation,
            fingerprint=fingerprint,
            follower_id=follower_id,
        )


@dataclass(frozen=True)
class WatchRequest:
    """Register a continuous query: push result deltas, generation by generation.

    The server answers with a :class:`WatchingResponse` naming the
    subscription, then pushes one :class:`SubscriptionDelta` per published
    generation whose changes produced new answers for the pattern (plus
    :class:`HeartbeatFrame` while idle).  ``initial=True`` (the default)
    asks for a first delta carrying every currently-matching row, so the
    union of all received deltas is always the full current result set.
    ``strict`` mirrors the query flag: an unknown predicate is refused at
    watch time instead of matching nothing forever.

    On the threaded TCP transport the connection flips to server-push, the
    same way the replication ``subscribe`` op does; the asyncio transport
    stays duplex, so one connection can hold many watches and interleave
    ordinary requests (see :class:`UnwatchRequest`).
    """

    op: ClassVar[str] = "watch"

    pattern: str
    strict: bool = False
    initial: bool = True

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"pattern": self.pattern}
        if self.strict:
            payload["strict"] = True
        if not self.initial:
            payload["initial"] = False
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> WatchRequest:
        return cls(
            pattern=_string_field(payload, "pattern"),
            strict=_bool_field(payload, "strict"),
            initial=_bool_field(payload, "initial", default=True),
        )


@dataclass(frozen=True)
class UnwatchRequest:
    """Cancel one subscription opened by :class:`WatchRequest`.

    Only meaningful on a duplex transport (the asyncio front-end); on the
    threaded transport a watching connection is push-only, so the
    subscription ends when the connection closes.
    """

    op: ClassVar[str] = "unwatch"

    subscription: str

    def to_payload(self) -> Dict[str, Any]:
        return {"subscription": self.subscription}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> UnwatchRequest:
        return cls(subscription=_string_field(payload, "subscription"))


ApiRequest = Union[
    QueryRequest,
    FetchRequest,
    CloseCursorRequest,
    AddFactsRequest,
    BatchRequest,
    ExplainRequest,
    LintRequest,
    StatsRequest,
    PingRequest,
    SubscribeRequest,
    WatchRequest,
    UnwatchRequest,
]

REQUEST_TYPES: Dict[str, Any] = {
    request_type.op: request_type
    for request_type in (
        QueryRequest,
        FetchRequest,
        CloseCursorRequest,
        AddFactsRequest,
        BatchRequest,
        ExplainRequest,
        LintRequest,
        StatsRequest,
        PingRequest,
        SubscribeRequest,
        WatchRequest,
        UnwatchRequest,
    )
}


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def _serialize_witness(substitution: Any) -> Dict[str, Any]:
    return {
        "sequences": {
            name: value.text
            for name, value in sorted(substitution.sequence_bindings.items())
        },
        "indexes": dict(sorted(substitution.index_bindings.items())),
    }


@dataclass(frozen=True)
class QueryResultPage:
    """One page of answers (the full result when ``complete`` and offset 0).

    ``rows`` are tuples of plain strings; ``witnesses`` are
    ``{"sequences": {var: text}, "indexes": {var: int}}`` objects (empty
    unless the request asked for them).  ``cursor`` is set while more pages
    remain; fetch them with :class:`FetchRequest`.  ``generation`` names
    the server snapshot the whole (multi-page) result was pinned to.
    """

    kind: ClassVar[str] = "query_result"

    pattern: str
    rows: Tuple[Tuple[str, ...], ...]
    witnesses: Tuple[Mapping[str, Any], ...]
    row_offset: int
    witness_offset: int
    total_rows: int
    total_witnesses: int
    complete: bool
    cursor: Optional[str] = None
    generation: Optional[int] = None

    @classmethod
    def from_result(
        cls,
        result: QueryResult,
        window: ResultWindow,
        cursor: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> QueryResultPage:
        return cls(
            pattern=str(result.pattern),
            rows=tuple(
                tuple(value.text for value in row) for row in window.rows
            ),
            witnesses=tuple(
                _serialize_witness(substitution) for substitution in window.witnesses
            ),
            row_offset=window.row_offset,
            witness_offset=window.witness_offset,
            total_rows=window.total_rows,
            total_witnesses=window.total_witnesses,
            complete=window.complete,
            cursor=cursor,
            generation=generation,
        )

    # Result-reading conveniences mirroring QueryResult, so tests and
    # callers can compare remote and in-process answers directly.
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[str, ...]]:
        return iter(self.rows)

    def texts(self) -> List[Tuple[str, ...]]:
        """The page's rows as sorted tuples of strings (QueryResult parity)."""
        return sorted(tuple(row) for row in self.rows)

    def values(self, variable: str) -> List[str]:
        """Distinct witness bindings of one variable, sorted (needs witnesses)."""
        seen = set()
        for witness in self.witnesses:
            sequences = witness.get("sequences", {})
            if variable in sequences:
                seen.add(sequences[variable])
        return sorted(seen)

    def is_empty(self) -> bool:
        return not self.rows

    def to_payload(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "rows": [list(row) for row in self.rows],
            "witnesses": [dict(witness) for witness in self.witnesses],
            "row_offset": self.row_offset,
            "witness_offset": self.witness_offset,
            "total_rows": self.total_rows,
            "total_witnesses": self.total_witnesses,
            "complete": self.complete,
            "cursor": self.cursor,
            "generation": self.generation,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> QueryResultPage:
        rows = payload.get("rows")
        if not isinstance(rows, list):
            raise ProtocolError("query_result payload: 'rows' must be a list")
        witnesses = payload.get("witnesses", [])
        cursor = payload.get("cursor")
        generation = payload.get("generation")
        return cls(
            pattern=str(payload.get("pattern", "")),
            rows=tuple(tuple(str(value) for value in row) for row in rows),
            witnesses=tuple(dict(witness) for witness in witnesses),
            row_offset=int(payload.get("row_offset", 0)),
            witness_offset=int(payload.get("witness_offset", 0)),
            total_rows=int(payload.get("total_rows", len(rows))),
            total_witnesses=int(payload.get("total_witnesses", len(witnesses))),
            complete=bool(payload.get("complete", True)),
            cursor=cursor if isinstance(cursor, str) else None,
            generation=generation if isinstance(generation, int) else None,
        )

    @classmethod
    def merge(cls, pages: List["QueryResultPage"]) -> QueryResultPage:
        """Reassemble a paged result into one complete page (client side)."""
        if not pages:
            raise ValidationError("cannot merge zero pages")
        first = pages[0]
        rows: List[Tuple[str, ...]] = []
        witnesses: List[Mapping[str, Any]] = []
        for page in pages:
            rows.extend(page.rows)
            witnesses.extend(page.witnesses)
        return cls(
            pattern=first.pattern,
            rows=tuple(rows),
            witnesses=tuple(witnesses),
            row_offset=0,
            witness_offset=0,
            total_rows=first.total_rows,
            total_witnesses=first.total_witnesses,
            complete=True,
            cursor=None,
            generation=first.generation,
        )


@dataclass(frozen=True)
class AddFactsResponse:
    """What one maintenance run did (a typed MaintenanceReport)."""

    kind: ClassVar[str] = "add_facts"

    base_facts_added: int
    facts_added: int
    sweeps: int
    elapsed_seconds: float
    generation: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "base_facts_added": self.base_facts_added,
            "facts_added": self.facts_added,
            "sweeps": self.sweeps,
            "elapsed_seconds": self.elapsed_seconds,
            "generation": self.generation,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> AddFactsResponse:
        generation = payload.get("generation")
        return cls(
            base_facts_added=int(payload.get("base_facts_added", 0)),
            facts_added=int(payload.get("facts_added", 0)),
            sweeps=int(payload.get("sweeps", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            generation=generation if isinstance(generation, int) else None,
        )


@dataclass(frozen=True)
class BatchResponse:
    """One (monolithic-or-cursored) page per input pattern, in input order."""

    kind: ClassVar[str] = "batch"

    results: Tuple[QueryResultPage, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {"results": [page.to_payload() for page in self.results]}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> BatchResponse:
        raw = payload.get("results")
        if not isinstance(raw, list):
            raise ProtocolError("batch payload: 'results' must be a list")
        return cls(
            results=tuple(QueryResultPage.from_payload(entry) for entry in raw)
        )


@dataclass(frozen=True)
class ExplainResponse:
    kind: ClassVar[str] = "explain"

    text: str

    def to_payload(self) -> Dict[str, Any]:
        return {"text": self.text}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> ExplainResponse:
        return cls(text=str(payload.get("text", "")))


@dataclass(frozen=True)
class LintResponse:
    """The server's diagnostic report: stable codes, spans and counts.

    The payload is the report's own wire form (``diagnostics`` +
    ``counts``) flattened into the envelope; spans survive the round trip
    1-based exactly as the parser assigned them.
    """

    kind: ClassVar[str] = "lint"

    report: DiagnosticReport

    def to_payload(self) -> Dict[str, Any]:
        return self.report.to_payload()

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> LintResponse:
        diagnostics = payload.get("diagnostics")
        if not isinstance(diagnostics, list):
            raise ProtocolError("lint payload: 'diagnostics' must be a list")
        return cls(report=DiagnosticReport.from_payload(payload))


@dataclass(frozen=True)
class ClosedResponse:
    kind: ClassVar[str] = "closed"

    cursor: str

    def to_payload(self) -> Dict[str, Any]:
        return {"cursor": self.cursor}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> ClosedResponse:
        return cls(cursor=str(payload.get("cursor", "")))


@dataclass(frozen=True)
class PongResponse:
    """Version negotiation reply: what the server speaks."""

    kind: ClassVar[str] = "pong"

    versions: Tuple[int, ...]
    server_version: str
    generation: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "versions": list(self.versions),
            "server_version": self.server_version,
            "generation": self.generation,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> PongResponse:
        versions = payload.get("versions", [])
        generation = payload.get("generation")
        return cls(
            versions=tuple(int(version) for version in versions),
            server_version=str(payload.get("server_version", "")),
            generation=generation if isinstance(generation, int) else None,
        )


# ----------------------------------------------------------------------
# Replication stream responses (see repro.replication)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HelloResponse:
    """The leader's greeting to a new subscriber.

    ``generation`` is the leader's published generation at subscribe
    time — the follower is caught up once it has applied through it.
    ``bootstrap`` says whether snapshot frames follow before the first
    generation frame; ``fingerprint`` names the program identity the
    stream replicates.
    """

    kind: ClassVar[str] = "hello"

    generation: int
    facts: int
    bootstrap: bool
    fingerprint: str
    heartbeat_seconds: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "facts": self.facts,
            "bootstrap": self.bootstrap,
            "fingerprint": self.fingerprint,
            "heartbeat_seconds": self.heartbeat_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> HelloResponse:
        return cls(
            generation=int(payload.get("generation", 0)),
            facts=int(payload.get("facts", 0)),
            bootstrap=bool(payload.get("bootstrap", False)),
            fingerprint=str(payload.get("fingerprint", "")),
            heartbeat_seconds=float(payload.get("heartbeat_seconds", 1.0)),
        )


@dataclass(frozen=True)
class SnapshotFrame:
    """One bootstrap chunk: a :mod:`repro.storage.snapshot` record on the wire.

    ``record`` is exactly one frame of the on-disk snapshot format
    (header / relation chunk / base-fact chunk / end marker), so the
    bootstrap stream and a snapshot file carry the same structure — the
    follower assembles them with the same validation the loader applies.
    """

    kind: ClassVar[str] = "snapshot_frame"

    record: Mapping[str, Any]

    def to_payload(self) -> Dict[str, Any]:
        return {"record": dict(self.record)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> SnapshotFrame:
        record = payload.get("record")
        if not isinstance(record, Mapping):
            raise ProtocolError("snapshot_frame payload: 'record' must be an object")
        return cls(record=dict(record))


@dataclass(frozen=True)
class GenerationFrame:
    """One published generation as an incremental replication step.

    ``facts`` is the batch of base-fact text tuples whose insertion
    produced the generation (the same row shape ``add_facts`` carries);
    ``fact_count`` is the leader's total model size at this generation —
    the follower verifies it after applying, so silent divergence cannot
    accumulate.
    """

    kind: ClassVar[str] = "generation_frame"

    generation: int
    facts: Tuple[Tuple[str, Tuple[str, ...]], ...]
    fact_count: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "facts": [[predicate, list(values)] for predicate, values in self.facts],
            "fact_count": self.fact_count,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> GenerationFrame:
        return cls(
            generation=int(payload.get("generation", 0)),
            facts=_decode_facts(payload),
            fact_count=int(payload.get("fact_count", 0)),
        )


@dataclass(frozen=True)
class HeartbeatFrame:
    """A keep-alive on an idle push stream (replication or live queries).

    Carries the server's current generation, so a quiet follower (or
    watcher) still tracks lag and liveness without any data moving.  On a
    live-query stream ``subscription`` names the subscription the beat
    belongs to, so a duplex connection holding several watches can route
    it; replication heartbeats leave it ``None``.
    """

    kind: ClassVar[str] = "heartbeat"

    generation: int
    subscription: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"generation": self.generation}
        if self.subscription is not None:
            payload["subscription"] = self.subscription
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> HeartbeatFrame:
        subscription = payload.get("subscription")
        return cls(
            generation=int(payload.get("generation", 0)),
            subscription=subscription if isinstance(subscription, str) else None,
        )


@dataclass(frozen=True)
class WatchingResponse:
    """Acknowledgement of a :class:`WatchRequest`.

    ``subscription`` is the server-assigned identifier every subsequent
    :class:`SubscriptionDelta` (and targeted heartbeat) carries;
    ``generation`` is the published generation the subscription started
    at — the initial delta, when requested, snapshots exactly this
    generation, and every later delta has a strictly greater generation.
    """

    kind: ClassVar[str] = "watching"

    subscription: str
    pattern: str
    generation: int
    heartbeat_seconds: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "subscription": self.subscription,
            "pattern": self.pattern,
            "generation": self.generation,
            "heartbeat_seconds": self.heartbeat_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> WatchingResponse:
        return cls(
            subscription=str(payload.get("subscription", "")),
            pattern=str(payload.get("pattern", "")),
            generation=int(payload.get("generation", 0)),
            heartbeat_seconds=float(payload.get("heartbeat_seconds", 0.0)),
        )


@dataclass(frozen=True)
class SubscriptionDelta:
    """Newly-added answers for one subscription at one published generation.

    ``rows`` carries only rows not previously delivered on this
    subscription (the model is append-only, so there are no retractions);
    the union of all deltas received so far — including the ``initial``
    frame when requested — equals a from-scratch query of the model at
    ``generation``, fact for fact.  ``coalesced`` counts *extra*
    generations merged into this frame under backpressure: ``0`` means
    the frame maps one-to-one onto a published generation.
    """

    kind: ClassVar[str] = "subscription_delta"

    subscription: str
    generation: int
    rows: Tuple[Tuple[str, ...], ...]
    initial: bool = False
    coalesced: int = 0

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "subscription": self.subscription,
            "generation": self.generation,
            "rows": [list(row) for row in self.rows],
        }
        if self.initial:
            payload["initial"] = True
        if self.coalesced:
            payload["coalesced"] = self.coalesced
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> SubscriptionDelta:
        raw_rows = payload.get("rows")
        if not isinstance(raw_rows, (list, tuple)):
            raise ProtocolError("subscription_delta payload: 'rows' must be a list")
        rows: List[Tuple[str, ...]] = []
        for row in raw_rows:
            if not isinstance(row, (list, tuple)):
                raise ProtocolError(
                    "subscription_delta payload: every row must be a list"
                )
            rows.append(tuple(str(value) for value in row))
        return cls(
            subscription=str(payload.get("subscription", "")),
            generation=int(payload.get("generation", 0)),
            rows=tuple(rows),
            initial=bool(payload.get("initial", False)),
            coalesced=int(payload.get("coalesced", 0)),
        )


@dataclass(frozen=True)
class UnwatchedResponse:
    """Acknowledgement of an :class:`UnwatchRequest`: the subscription ended."""

    kind: ClassVar[str] = "unwatched"

    subscription: str

    def to_payload(self) -> Dict[str, Any]:
        return {"subscription": self.subscription}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> UnwatchedResponse:
        return cls(subscription=str(payload.get("subscription", "")))


#: The schema-stable subset of the stats payload.  These keys are part of
#: the wire contract; everything else travels in ``extra`` (flattened into
#: the JSON object) and may evolve freely.
_STATS_FIELDS = (
    "facts",
    "base_facts",
    "predicates",
    "queries_served",
    "maintenance_runs",
    "poisoned",
    "generation",
    "workers",
    "durability",
    "replication",
    "live",
)


@dataclass(frozen=True)
class ServerStats:
    """Serving diagnostics with a frozen core schema.

    The typed fields are stable across versions; ``extra`` carries the
    engine's evolving diagnostics (cache counters, intern-table growth,
    parallel-pool stats, the server sub-report) verbatim.
    """

    kind: ClassVar[str] = "stats"

    facts: int
    base_facts: int
    predicates: int
    queries_served: int
    maintenance_runs: int
    poisoned: bool
    generation: Optional[int] = None
    workers: Optional[int] = None
    #: Durable-storage counters (``DurableStore.stats()``) when the backend
    #: runs on a data directory; ``None`` for in-memory servers.
    durability: Optional[Mapping[str, Any]] = None
    #: Replication role and lag: ``{"role": "leader", "subscribers": ...}``
    #: or ``{"role": "follower", "leader": "host:port", "lag": ...}``;
    #: ``None`` for an unreplicated server.
    replication: Optional[Mapping[str, Any]] = None
    #: Live-query counters (``SubscriptionManager.stats()``): open
    #: connections, active subscriptions, deltas pushed, coalesced
    #: generations, slow-consumer disconnects, open cursors; ``None``
    #: when the serving path has no subscription manager attached.
    live: Optional[Mapping[str, Any]] = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_raw(
        cls,
        stats: Mapping[str, Any],
        generation: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> ServerStats:
        """Wrap a raw ``DatalogSession.stats()``/``DatalogServer.stats()`` dict."""
        extra = {
            key: value for key, value in stats.items() if key not in _STATS_FIELDS
        }
        durability = stats.get("durability")
        replication = stats.get("replication")
        live = stats.get("live")
        return cls(
            facts=int(stats.get("facts", 0)),
            base_facts=int(stats.get("base_facts", 0)),
            predicates=int(stats.get("predicates", 0)),
            queries_served=int(stats.get("queries_served", 0)),
            maintenance_runs=int(stats.get("maintenance_runs", 0)),
            poisoned=bool(stats.get("poisoned", False)),
            generation=generation,
            workers=workers,
            durability=durability if isinstance(durability, Mapping) else None,
            replication=replication if isinstance(replication, Mapping) else None,
            live=live if isinstance(live, Mapping) else None,
            extra=extra,
        )

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = dict(self.extra)
        payload.update(
            facts=self.facts,
            base_facts=self.base_facts,
            predicates=self.predicates,
            queries_served=self.queries_served,
            maintenance_runs=self.maintenance_runs,
            poisoned=self.poisoned,
            generation=self.generation,
            workers=self.workers,
        )
        if self.durability is not None:
            payload["durability"] = dict(self.durability)
        if self.replication is not None:
            payload["replication"] = dict(self.replication)
        if self.live is not None:
            payload["live"] = dict(self.live)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> ServerStats:
        generation = payload.get("generation")
        workers = payload.get("workers")
        durability = payload.get("durability")
        replication = payload.get("replication")
        live = payload.get("live")
        extra = {
            key: value for key, value in payload.items()
            if key not in _STATS_FIELDS and key not in ("v", "ok", "kind")
        }
        return cls(
            facts=int(payload.get("facts", 0)),
            base_facts=int(payload.get("base_facts", 0)),
            predicates=int(payload.get("predicates", 0)),
            queries_served=int(payload.get("queries_served", 0)),
            maintenance_runs=int(payload.get("maintenance_runs", 0)),
            poisoned=bool(payload.get("poisoned", False)),
            generation=generation if isinstance(generation, int) else None,
            workers=workers if isinstance(workers, int) else None,
            durability=durability if isinstance(durability, Mapping) else None,
            replication=replication if isinstance(replication, Mapping) else None,
            live=live if isinstance(live, Mapping) else None,
            extra=extra,
        )


ApiResponse = Union[
    QueryResultPage,
    AddFactsResponse,
    BatchResponse,
    ExplainResponse,
    LintResponse,
    ClosedResponse,
    PongResponse,
    ServerStats,
    HelloResponse,
    SnapshotFrame,
    GenerationFrame,
    HeartbeatFrame,
    WatchingResponse,
    SubscriptionDelta,
    UnwatchedResponse,
]

RESPONSE_TYPES: Dict[str, Any] = {
    response_type.kind: response_type
    for response_type in (
        QueryResultPage,
        AddFactsResponse,
        BatchResponse,
        ExplainResponse,
        LintResponse,
        ClosedResponse,
        PongResponse,
        ServerStats,
        HelloResponse,
        SnapshotFrame,
        GenerationFrame,
        HeartbeatFrame,
        WatchingResponse,
        SubscriptionDelta,
        UnwatchedResponse,
    )
}


# ----------------------------------------------------------------------
# Envelope codecs and version negotiation
# ----------------------------------------------------------------------
def check_version(message: Mapping[str, Any]) -> int:
    """Validate a message's ``"v"`` field against the supported versions."""
    version = message.get("v")
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise RemoteApiError(
            f"message needs an integer schema version 'v' >= 1, got {version!r}",
            code=ErrorCode.BAD_REQUEST,
            details={"field": "v"},
        )
    if version not in SUPPORTED_VERSIONS:
        raise RemoteApiError(
            f"schema version {version} is not supported "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})",
            code=ErrorCode.UNSUPPORTED_VERSION,
            details={"supported": list(SUPPORTED_VERSIONS)},
        )
    return version


def encode_request(request: ApiRequest) -> Dict[str, Any]:
    """A typed request as its versioned wire object."""
    payload = request.to_payload()
    payload["v"] = SCHEMA_VERSION
    payload["op"] = request.op
    return payload


def decode_request(message: Mapping[str, Any]) -> ApiRequest:
    """Decode and validate a wire object into a typed request.

    Raises :class:`~repro.errors.RemoteApiError` with a stable code
    (``bad_request`` / ``unsupported_version`` / ``validation_error``) on
    anything malformed; the caller maps it through
    :meth:`ApiError.from_exception`.
    """
    if not isinstance(message, Mapping):
        raise RemoteApiError(
            f"request must be a JSON object, got {_type_name(message)}",
            code=ErrorCode.BAD_REQUEST,
        )
    check_version(message)
    op = message.get("op")
    if op not in REQUEST_TYPES:
        raise RemoteApiError(
            f"unknown op {op!r}",
            code=ErrorCode.BAD_REQUEST,
            details={"known_ops": sorted(REQUEST_TYPES)},
        )
    return REQUEST_TYPES[op].from_payload(message)


def encode_response(response: Union[ApiResponse, ApiError]) -> Dict[str, Any]:
    """A typed response (or error) as its versioned wire object."""
    if isinstance(response, ApiError):
        return {
            "v": SCHEMA_VERSION,
            "ok": False,
            "kind": "error",
            "error": response.to_payload(),
        }
    payload = response.to_payload()
    payload["v"] = SCHEMA_VERSION
    payload["ok"] = True
    payload["kind"] = response.kind
    return payload


def decode_response(message: Mapping[str, Any]) -> Union[ApiResponse, ApiError]:
    """Decode a wire object into a typed response or an :class:`ApiError`.

    Malformed envelopes raise :class:`~repro.errors.ProtocolError` — they
    mean the peer does not speak the protocol at all, as opposed to a
    well-formed error reply, which is *returned* for the caller to raise.
    """
    if not isinstance(message, Mapping):
        raise ProtocolError(f"response must be a JSON object, got {_type_name(message)}")
    if message.get("ok") is False or message.get("kind") == "error":
        return ApiError.from_payload(message.get("error", {}))
    kind = message.get("kind")
    if kind not in RESPONSE_TYPES:
        raise ProtocolError(f"unknown response kind {kind!r}")
    try:
        return RESPONSE_TYPES[kind].from_payload(message)
    except ProtocolError:
        raise
    except Exception as error:
        # A peer that sends a known kind with garbage inside must surface
        # as a typed protocol failure, never a raw TypeError/ValueError.
        raise ProtocolError(f"malformed {kind} payload: {error}") from None
