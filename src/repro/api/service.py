"""Typed request dispatch over a serving backend (the API's one choke point).

:class:`DatalogService` executes :mod:`repro.api.types` requests against a
:class:`~repro.engine.server.DatalogServer` (the concurrent, snapshot-
isolated backend) or a :class:`~repro.engine.session.DatalogSession` (the
single-caller backend the CLI's demand mode uses).  Every transport — the
TCP handler, the ``--json`` CLI loops, in-process tests — funnels through
:meth:`DatalogService.handle_raw`, which is therefore the single place
where

* schema versions are checked and requests validated field-by-field,
* **every** exception becomes a typed :class:`~repro.api.types.ApiError`
  (internal exception types, ``KeyError``-class bugs included, never cross
  the boundary raw — satisfying the error-leakage contract), and
* large results are paginated: the service clamps every page to
  ``max_page_rows`` and parks the remainder behind a cursor, so a
  million-row answer never serializes into one giant JSON blob.

Cursors are owned by the service instance.  Transports create one service
per connection, which scopes cursors to the connection (dropping the
connection drops its cursors) and makes the pull-one-page-at-a-time loop
the per-connection backpressure mechanism: no page is computed, encoded or
buffered before the client asks for it.  A cursor pins the fully-evaluated
:class:`~repro.engine.query.QueryResult` it pages over, so a stream opened
before an ``add_facts`` keeps returning the snapshot it started on — the
same repeatable-read story the server's generations give single-shot
queries.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.analysis.diagnostics import (
    DiagnosticReport,
    explain_with_diagnostics,
    lint_program,
)
from repro.api.types import (
    AddFactsRequest,
    AddFactsResponse,
    ApiError,
    ApiRequest,
    ApiResponse,
    BatchRequest,
    BatchResponse,
    CloseCursorRequest,
    ClosedResponse,
    ErrorCode,
    ExplainRequest,
    ExplainResponse,
    FetchRequest,
    HeartbeatFrame,
    HelloResponse,
    LintRequest,
    LintResponse,
    PingRequest,
    PongResponse,
    QueryRequest,
    QueryResultPage,
    ServerStats,
    SnapshotFrame,
    StatsRequest,
    SubscribeRequest,
    SUPPORTED_VERSIONS,
    UnwatchRequest,
    WatchRequest,
    decode_request,
    encode_response,
)
from repro.engine.query import QueryResult
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import LagTimeoutError, RemoteApiError, ReplicationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hub imports types)
    from repro.live.subscriptions import SubscriptionManager
    from repro.replication.hub import ReplicationHub

#: Hard ceiling on rows (and witnesses) per page.  Monolithic requests are
#: clamped to this too: the wire never carries more than one page per frame.
DEFAULT_MAX_PAGE_ROWS = 10_000

#: Open cursors per service (= per connection).  A leaky client that never
#: fetches or closes its streams is cut off instead of growing the server.
DEFAULT_MAX_CURSORS = 64

#: How long a ``min_generation``-bounded query waits for the backend to
#: catch up when the request names no timeout of its own.
DEFAULT_MIN_GENERATION_TIMEOUT = 5.0


class _Cursor:
    """Server-side pagination state over one pinned, evaluated result."""

    __slots__ = (
        "result", "row_offset", "witness_offset", "page_rows",
        "include_witnesses", "generation",
    )

    def __init__(
        self,
        result: QueryResult,
        page_rows: int,
        include_witnesses: bool,
        generation: Optional[int],
    ) -> None:
        self.result = result
        self.row_offset = 0
        self.witness_offset = 0
        self.page_rows = page_rows
        self.include_witnesses = include_witnesses
        self.generation = generation


class DatalogService:
    """Execute typed API requests against one serving backend.

    Parameters
    ----------
    backend:
        A :class:`DatalogServer` (concurrent, generation-publishing) or a
        :class:`DatalogSession` (single caller; the CLI's demand mode).
    demand:
        With a session backend, answer queries demand-driven
        (``session.query(..., demand=True)``); ignored for servers, which
        always serve full snapshots.
    max_page_rows:
        Page clamp: no response frame ever carries more rows (or witnesses)
        than this, whatever the request asked for.
    max_open_cursors:
        Concurrent unfinished streams allowed on this service instance.
    hub:
        The server's :class:`~repro.replication.hub.ReplicationHub`, when
        it acts as a replication leader.  Enables ``subscribe`` streams
        (on transports that support server-push) and folds the hub's
        counters into ``stats`` replies.
    live:
        The server's :class:`~repro.live.subscriptions.SubscriptionManager`,
        when a transport serves live queries.  Folds the versioned
        ``live`` section into ``stats`` replies and counts this service's
        cursors on the serving-wide open-cursor gauge.

    The instance is *not* thread-safe (cursors are plain state); give each
    connection its own service over the shared, thread-safe server.
    """

    def __init__(
        self,
        backend: Union[DatalogServer, DatalogSession],
        demand: bool = False,
        max_page_rows: int = DEFAULT_MAX_PAGE_ROWS,
        max_open_cursors: int = DEFAULT_MAX_CURSORS,
        hub: Optional["ReplicationHub"] = None,
        live: Optional["SubscriptionManager"] = None,
    ) -> None:
        self._backend = backend
        self._hub = hub
        self._live = live
        self._demand = demand and isinstance(backend, DatalogSession)
        self._max_page_rows = max(1, max_page_rows)
        self._max_open_cursors = max(1, max_open_cursors)
        self._cursors: Dict[str, _Cursor] = {}
        self._cursor_ids = itertools.count(1)
        self._explain_text: Optional[str] = None
        self._lint_report: Optional[DiagnosticReport] = None

    # ------------------------------------------------------------------
    # Envelope boundary
    # ------------------------------------------------------------------
    def handle_raw(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Decode, dispatch and encode one wire message.

        Never raises (short of interpreter-level exits): every failure —
        malformed envelope, validation error, engine exception, internal
        bug — is returned as an encoded :class:`ApiError` response.
        """
        try:
            request = decode_request(message)
            response = self.handle(request)
        except Exception as error:
            return encode_response(ApiError.from_exception(error))
        return encode_response(response)

    # ------------------------------------------------------------------
    # Typed dispatch
    # ------------------------------------------------------------------
    def handle(self, request: ApiRequest) -> ApiResponse:
        """Execute one typed request (raises library exceptions on failure)."""
        if isinstance(request, QueryRequest):
            return self._query(request)
        if isinstance(request, FetchRequest):
            return self._fetch(request)
        if isinstance(request, CloseCursorRequest):
            return self._close_cursor(request)
        if isinstance(request, AddFactsRequest):
            return self._add_facts(request)
        if isinstance(request, BatchRequest):
            return self._batch(request)
        if isinstance(request, ExplainRequest):
            # The program is immutable for the backend's lifetime; compile
            # the report once per service, not once per request.
            if self._explain_text is None:
                self._explain_text = explain_with_diagnostics(self._backend.program)
            return ExplainResponse(text=self._explain_text)
        if isinstance(request, LintRequest):
            return self._lint(request)
        if isinstance(request, StatsRequest):
            return self._stats()
        if isinstance(request, PingRequest):
            return self._pong()
        if isinstance(request, SubscribeRequest):
            # Subscriptions flip the connection to server-push, which only
            # a streaming transport can carry; the TCP handler intercepts
            # the op before dispatch and drives stream_subscription.
            raise RemoteApiError(
                "subscribe requires a streaming transport (connect over TCP)",
                code=ErrorCode.BAD_REQUEST,
            )
        if isinstance(request, (WatchRequest, UnwatchRequest)):
            # Live queries need server-push too: both TCP transports
            # intercept these ops before dispatch and drive the
            # subscription manager themselves.
            raise RemoteApiError(
                "watch requires a streaming transport (connect over TCP)",
                code=ErrorCode.BAD_REQUEST,
            )
        raise RemoteApiError(
            f"unhandled request type {type(request).__name__}",
            code=ErrorCode.BAD_REQUEST,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> Union[DatalogServer, DatalogSession]:
        return self._backend

    def open_cursors(self) -> int:
        return len(self._cursors)

    def _register_cursor(self, cursor_id: str, cursor: _Cursor) -> None:
        self._cursors[cursor_id] = cursor
        if self._live is not None:
            self._live.cursor_opened()

    def _drop_cursor(self, cursor_id: str) -> None:
        if self._cursors.pop(cursor_id, None) is not None and self._live is not None:
            self._live.cursor_released()

    def release_cursor(self, cursor_id: str) -> None:
        """Drop one cursor's pagination state (unknown ids are a no-op).

        Transports call this for cursors registered by a reply they failed
        to deliver — the client never learned the id, so nothing else
        would ever free it.
        """
        self._drop_cursor(cursor_id)

    def close(self) -> None:
        """Release every cursor (transports call this when the connection
        drops, keeping the serving-wide open-cursor gauge honest)."""
        for cursor_id in list(self._cursors):
            self._drop_cursor(cursor_id)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _generation(self) -> Optional[int]:
        return getattr(self._backend, "generation", None)

    def _execute(
        self, pattern: str, strict: bool
    ) -> Tuple[QueryResult, Optional[int]]:
        """Run one pattern; returns ``(result, generation of the data read)``.

        Against a server the snapshot is pinned *before* execution and its
        generation labels the page — reading ``backend.generation`` after
        the fact would let a concurrent ``add_facts`` publish in between
        and stamp the page with a generation newer than its rows.
        """
        if isinstance(self._backend, DatalogServer):
            snapshot = self._backend.snapshot
            result = self._backend.query(pattern, strict=strict, snapshot=snapshot)
            return result, snapshot.generation
        if self._demand:
            return self._backend.query(pattern, strict=strict, demand=True), None
        return self._backend.query(pattern, strict=strict), None

    def _paged(
        self,
        result: QueryResult,
        page_size: Optional[int],
        include_witnesses: bool,
        generation: Optional[int],
    ) -> QueryResultPage:
        page_rows = min(
            page_size if page_size is not None else self._max_page_rows,
            self._max_page_rows,
        )
        window = result.window(0, 0, limit=page_rows, witnesses=include_witnesses)
        cursor_id = None
        if not window.complete:
            if len(self._cursors) >= self._max_open_cursors:
                raise RemoteApiError(
                    f"too many open cursors ({self._max_open_cursors}); fetch "
                    "or close existing streams first",
                    code=ErrorCode.BAD_REQUEST,
                    details={"max_open_cursors": self._max_open_cursors},
                )
            cursor_id = f"c{next(self._cursor_ids)}"
            cursor = _Cursor(result, page_rows, include_witnesses, generation)
            cursor.row_offset = window.row_offset + len(window.rows)
            cursor.witness_offset = window.witness_offset + len(window.witnesses)
            self._register_cursor(cursor_id, cursor)
        return QueryResultPage.from_result(
            result, window, cursor=cursor_id, generation=generation
        )

    def _await_generation(self, generation: int, timeout: Optional[float]) -> None:
        """Block until the backend has published ``generation`` (or fail).

        The read-your-writes half of replication: a follower holds the
        query until it has caught up to the bound, then answers from a
        snapshot at least that new.  Backends that publish no generations
        (plain sessions) reject the bound outright.
        """
        waiter = getattr(self._backend, "wait_for_generation", None)
        if waiter is None:
            raise RemoteApiError(
                "min_generation requires a generation-publishing server "
                "backend (this endpoint serves an unversioned session)",
                code=ErrorCode.BAD_REQUEST,
                details={"field": "min_generation"},
            )
        timeout = timeout if timeout is not None else DEFAULT_MIN_GENERATION_TIMEOUT
        if not waiter(generation, timeout):
            current = getattr(self._backend, "generation", 0)
            raise LagTimeoutError(
                f"generation {generation} not reached within {timeout:g}s "
                f"(still at {current})"
            )

    def _query(self, request: QueryRequest) -> QueryResultPage:
        request.validate()
        if request.min_generation is not None:
            self._await_generation(
                request.min_generation, request.min_generation_timeout
            )
        result, generation = self._execute(request.pattern, request.strict)
        return self._paged(
            result, request.page_size, request.include_witnesses, generation
        )

    def _fetch(self, request: FetchRequest) -> QueryResultPage:
        cursor = self._cursors.get(request.cursor)
        if cursor is None:
            raise RemoteApiError(
                f"unknown cursor {request.cursor!r} (already exhausted, closed, "
                "or from another connection)",
                code=ErrorCode.UNKNOWN_CURSOR,
                details={"cursor": request.cursor},
            )
        window = cursor.result.window(
            cursor.row_offset,
            cursor.witness_offset,
            limit=cursor.page_rows,
            witnesses=cursor.include_witnesses,
        )
        if window.complete:
            self._drop_cursor(request.cursor)
            cursor_id = None
        else:
            cursor.row_offset = window.row_offset + len(window.rows)
            cursor.witness_offset = window.witness_offset + len(window.witnesses)
            cursor_id = request.cursor
        return QueryResultPage.from_result(
            cursor.result, window, cursor=cursor_id, generation=cursor.generation
        )

    def _close_cursor(self, request: CloseCursorRequest) -> ClosedResponse:
        # Closing an unknown cursor is not an error: the natural race is a
        # client closing a stream whose last fetch already exhausted it.
        self._drop_cursor(request.cursor)
        return ClosedResponse(cursor=request.cursor)

    def _add_facts(self, request: AddFactsRequest) -> AddFactsResponse:
        if isinstance(self._backend, DatalogServer):
            # The generation is read under the server's writer lock: it
            # names the snapshot containing exactly this write, not
            # whatever a concurrent writer published a microsecond later.
            report, generation = self._backend.add_facts_published(
                list(request.facts)
            )
        else:
            report = self._backend.add_facts(list(request.facts))
            generation = None
        return AddFactsResponse(
            base_facts_added=report.base_facts_added,
            facts_added=report.facts_added,
            sweeps=report.sweeps,
            elapsed_seconds=report.elapsed_seconds,
            generation=generation,
        )

    def _batch(self, request: BatchRequest) -> BatchResponse:
        if isinstance(self._backend, DatalogServer):
            # Pin ONE snapshot for the whole batch: every answer reads the
            # same consistent state (and is labeled with its generation)
            # even if maintenance publishes mid-batch; the server's
            # per-generation result cache still deduplicates repeats.
            snapshot = self._backend.snapshot
            results = [
                (
                    self._backend.query(
                        pattern, strict=request.strict, snapshot=snapshot
                    ),
                    snapshot.generation,
                )
                for pattern in request.patterns
            ]
        else:
            results = [
                self._execute(pattern, request.strict)
                for pattern in request.patterns
            ]
        pages = []
        try:
            for result, generation in results:
                pages.append(self._paged(result, None, False, generation))
        except Exception:
            # A failure mid-encoding (e.g. the open-cursor cap) must not
            # orphan the cursors earlier results of this batch registered:
            # only the error reply ships, so the client could never learn
            # (or free) their ids.
            for page in pages:
                if page.cursor is not None:
                    self.release_cursor(page.cursor)
            raise
        return BatchResponse(results=tuple(pages))

    def _lint(self, request: LintRequest) -> LintResponse:
        # The server holds the program but not the caller's source file, so
        # diagnostics carry the spans the program was parsed with; patterns
        # vary per request and bypass the cached pattern-free report.
        if request.patterns:
            return LintResponse(
                report=lint_program(self._backend.program, patterns=request.patterns)
            )
        if self._lint_report is None:
            self._lint_report = lint_program(self._backend.program)
        return LintResponse(report=self._lint_report)

    def _stats(self) -> ServerStats:
        raw = self._backend.stats()
        if self._hub is not None and "replication" not in raw:
            # The leader's replication block comes from the hub; a backend
            # that already reports one (a follower) keeps its own.
            raw = dict(raw)
            raw["replication"] = self._hub.stats()
        if self._live is not None and "live" not in raw:
            raw = dict(raw)
            raw["live"] = self._live.stats()
        return ServerStats.from_raw(
            raw,
            generation=self._generation(),
            workers=getattr(self._backend, "workers", None),
        )

    # ------------------------------------------------------------------
    # Replication streaming (driven by the transport, not handle())
    # ------------------------------------------------------------------
    def stream_subscription(
        self, request: SubscribeRequest
    ) -> Iterator[ApiResponse]:
        """Yield the replication stream for one subscriber, forever.

        The transport sends each yielded response as its own frame and
        closes the connection when the generator returns (or the socket
        dies, which closes the generator).  Shape: one
        :class:`HelloResponse`; :class:`SnapshotFrame` records when the
        subscriber needs a bootstrap; then :class:`GenerationFrame` per
        publish with :class:`HeartbeatFrame` while idle.  A subscriber
        that falls behind the hub's retention floor mid-stream gets a
        final :data:`ErrorCode.REPLICATION` error with
        ``details.bootstrap_required`` and the stream ends.
        """
        hub = self._hub
        if hub is None:
            raise RemoteApiError(
                "this server does not publish a replication stream",
                code=ErrorCode.BAD_REQUEST,
            )
        if request.fingerprint is not None and request.fingerprint != hub.fingerprint:
            raise ReplicationError(
                "program fingerprint mismatch: this leader serves a "
                "different program than the subscriber expects"
            )
        heartbeat = hub.heartbeat_seconds
        backend = self._backend
        assert isinstance(backend, DatalogServer)
        bootstrap = request.from_generation is None or not hub.covers(
            request.from_generation
        )
        hub.subscriber_opened()
        try:
            if bootstrap:
                capture = hub.capture_bootstrap()
                yield HelloResponse(
                    generation=capture.generation,
                    facts=capture.fact_count,
                    bootstrap=True,
                    fingerprint=hub.fingerprint,
                    heartbeat_seconds=heartbeat,
                )
                for record in capture.records:
                    yield SnapshotFrame(record=record)
                last = capture.generation
            else:
                snapshot = backend.snapshot
                yield HelloResponse(
                    generation=snapshot.generation,
                    facts=snapshot.fact_count(),
                    bootstrap=False,
                    fingerprint=hub.fingerprint,
                    heartbeat_seconds=heartbeat,
                )
                last = request.from_generation
            while True:
                frames = hub.frames_since(last)
                if frames is None:
                    yield ApiError(
                        code=ErrorCode.REPLICATION,
                        message=(
                            f"generation {last} fell behind the replication "
                            "window; subscribe again for a snapshot bootstrap"
                        ),
                        details={"bootstrap_required": True},
                    )
                    return
                if frames:
                    for frame in frames:
                        yield frame
                    last = frames[-1].generation
                elif not backend.wait_for_generation(last + 1, heartbeat):
                    yield HeartbeatFrame(generation=hub.latest)
        finally:
            hub.subscriber_closed()

    def _pong(self) -> PongResponse:
        from repro import __version__  # runtime import: repro re-exports this package

        return PongResponse(
            versions=SUPPORTED_VERSIONS,
            server_version=__version__,
            generation=self._generation(),
        )
