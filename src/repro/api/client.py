"""A blocking client for the versioned TCP API.

:class:`DatalogClient` speaks the length-prefixed newline-JSON protocol of
:mod:`repro.api.protocol` and exposes the typed surface of
:mod:`repro.api.types`::

    with DatalogClient("127.0.0.1", 4321) as client:
        page = client.query('suffix("abc", X)')        # reassembled result
        for row in client.query_iter("suffix(D, X)"):  # constant-memory stream
            ...
        client.add_fact("r", "acgt")

Failure behaviour:

* **Typed errors.**  An error reply re-raises the library exception its
  code names (``UnknownPredicateError``, ``ParseError`` with location,
  ``SessionPoisonedError``, ...) — remote callers catch exactly what
  in-process callers catch.  Codes without a library exception raise
  :class:`~repro.errors.RemoteApiError`.
* **Retries.**  Connection-level failures (refused, reset, timed out,
  broken frame) are retried with a fresh connection up to ``retries``
  times.  Every request on this API is safe to retry: reads are
  snapshot-pinned and ``add_facts`` is monotone set insertion, so a replay
  is absorbed (the server publishes no new generation for already-present
  facts).  Mid-stream cursor fetches are the exception — a cursor dies
  with its connection — so :meth:`query_iter` surfaces the failure instead
  of silently restarting the stream.
"""

from __future__ import annotations

import socket
import time
from typing import (
    Any,
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.analysis.diagnostics import DiagnosticReport
from repro.api.protocol import MAX_FRAME_BYTES, recv_json, send_json
from repro.api.types import (
    AddFactsRequest,
    AddFactsResponse,
    ApiError,
    ApiRequest,
    ApiResponse,
    BatchRequest,
    BatchResponse,
    CloseCursorRequest,
    ExplainRequest,
    ExplainResponse,
    FetchRequest,
    LintRequest,
    LintResponse,
    HeartbeatFrame,
    PingRequest,
    PongResponse,
    QueryRequest,
    QueryResultPage,
    SCHEMA_VERSION,
    ServerStats,
    StatsRequest,
    SubscriptionDelta,
    WatchingResponse,
    WatchRequest,
    decode_response,
    encode_request,
)
from repro.engine.session import FactsLike, _iter_facts
from repro.errors import NotLeaderError, ProtocolError
from repro.sequences import Sequence

R = TypeVar("R", bound=ApiResponse)


def _normalize_facts(facts: FactsLike) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Client-side normalisation to the wire shape, with typed rejections."""
    normalized = []
    for predicate, values in _iter_facts(facts):
        normalized.append(
            (
                predicate,
                tuple(
                    value.text if isinstance(value, Sequence) else str(value)
                    for value in values
                ),
            )
        )
    return tuple(normalized)


class DatalogClient:
    """A blocking, reconnecting client for one API server.

    Parameters
    ----------
    host, port:
        The server address (``DatalogTCPServer.address``).
    timeout:
        Socket timeout in seconds for connects and replies.
    retries:
        Extra attempts (each on a fresh connection) after a
        connection-level failure; engine errors are never retried.
    retry_backoff_seconds:
        Sleep between attempts, doubled each time.
    page_size:
        Default page size for :meth:`query_iter` streams (the server clamps
        it to its own cap either way).
    follow_redirects:
        When a write lands on a read-only follower, re-send it once to the
        leader the ``not_leader`` error names (the redirect connection is
        cached).  Off, the :class:`~repro.errors.NotLeaderError` surfaces.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4321,
        timeout: float = 30.0,
        retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        page_size: int = 1024,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        follow_redirects: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        self.page_size = max(1, page_size)
        self.max_frame_bytes = max_frame_bytes
        self.follow_redirects = follow_redirects
        self._socket: Optional[socket.socket] = None
        self._reader: Optional[BinaryIO] = None
        self._writer: Optional[BinaryIO] = None
        self._redirect_client: Optional[DatalogClient] = None
        self.server_versions: Tuple[int, ...] = ()
        self.server_version: Optional[str] = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> DatalogClient:
        """Connect and negotiate the schema version (idempotent)."""
        if self._socket is None:
            self._open()
            pong = self.ping()
            if SCHEMA_VERSION not in pong.versions:
                versions = ", ".join(map(str, pong.versions)) or "none"
                self.close()
                raise ProtocolError(
                    f"server speaks schema versions [{versions}], "
                    f"this client needs v{SCHEMA_VERSION}"
                )
        return self

    def _open(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # Frames are small and latency-bound: Nagle + delayed ACK would
        # add ~40ms per round trip.
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._socket.makefile("rb")
        self._writer = self._socket.makefile("wb")

    def close(self) -> None:
        for stream in (self._reader, self._writer):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        self._socket = None
        self._reader = None
        self._writer = None
        if self._redirect_client is not None:
            redirect, self._redirect_client = self._redirect_client, None
            redirect.close()

    def __enter__(self) -> DatalogClient:
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._socket is not None

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _roundtrip(self, request: ApiRequest) -> Union[ApiResponse, ApiError]:
        if self._socket is None:
            self._open()
        assert self._writer is not None and self._reader is not None
        send_json(self._writer, encode_request(request), self.max_frame_bytes)
        message = recv_json(self._reader, self.max_frame_bytes)
        if message is None:
            raise ProtocolError("server closed the connection mid-request")
        return decode_response(message)

    def _request(self, request: ApiRequest, retryable: bool = True) -> ApiResponse:
        attempts = (self.retries if retryable else 0) + 1
        backoff = self.retry_backoff_seconds
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(backoff)
                backoff *= 2
            try:
                response = self._roundtrip(request)
            except (OSError, ProtocolError) as error:
                # The connection is in an unknown state: drop it so the
                # next attempt (or the next call) starts fresh.
                self.close()
                last_error = error
                continue
            if isinstance(response, ApiError):
                response.raise_()
            return response
        assert last_error is not None
        raise last_error

    def _expect(
        self, request: ApiRequest, response_type: Type[R], retryable: bool = True
    ) -> R:
        response = self._request(request, retryable=retryable)
        if not isinstance(response, response_type):
            raise ProtocolError(
                f"expected a {response_type.kind} reply to {request.op!r}, "
                f"got {type(response).__name__}"
            )
        return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    def ping(self) -> PongResponse:
        pong = self._expect(PingRequest(), PongResponse)
        self.server_versions = pong.versions
        self.server_version = pong.server_version
        return pong

    def query_pages(
        self,
        pattern: str,
        strict: bool = False,
        page_size: Optional[int] = None,
        include_witnesses: bool = False,
        min_generation: Optional[int] = None,
        min_generation_timeout: Optional[float] = None,
    ) -> Iterator[QueryResultPage]:
        """Yield a result's pages as the server-side cursor is followed.

        The one cursor-follow loop every higher-level call shares.  Cursor
        fetches are never silently retried on a new connection — the
        cursor died with the old one — so a mid-stream connection failure
        surfaces instead of restarting the stream on different data.

        ``min_generation`` bounds staleness on a replicated reader: the
        server holds the query until its model reaches that generation,
        raising :class:`~repro.errors.LagTimeoutError` after
        ``min_generation_timeout`` seconds if it never does.
        """
        request = QueryRequest(
            pattern=pattern,
            strict=strict,
            page_size=page_size,
            include_witnesses=include_witnesses,
            min_generation=min_generation,
            min_generation_timeout=min_generation_timeout,
        )
        page = self._expect(request, QueryResultPage)
        try:
            yield page
            while not page.complete:
                if page.cursor is None:
                    raise ProtocolError("incomplete page arrived without a cursor")
                page = self._expect(
                    FetchRequest(cursor=page.cursor), QueryResultPage,
                    retryable=False,
                )
                yield page
        finally:
            # A consumer that stops early (break, exception, garbage
            # collection of the generator) must not strand the server-side
            # cursor: until this connection closes it would keep pinning a
            # fully-evaluated result and counting against the per-
            # connection cursor cap.
            self._abandon_cursor(page)

    def query(
        self,
        pattern: str,
        strict: bool = False,
        witnesses: bool = False,
        page_size: Optional[int] = None,
        min_generation: Optional[int] = None,
        min_generation_timeout: Optional[float] = None,
    ) -> QueryResultPage:
        """Answer one pattern, reassembling every page into one result.

        The server still pages the wire transfer (its clamp applies even
        with ``page_size=None``), so a huge answer arrives frame by frame;
        only the client materialises the whole thing.  Use
        :meth:`query_iter` to stay constant-memory end to end.
        """
        pages = list(
            self.query_pages(
                pattern, strict=strict, page_size=page_size,
                include_witnesses=witnesses,
                min_generation=min_generation,
                min_generation_timeout=min_generation_timeout,
            )
        )
        return QueryResultPage.merge(pages) if len(pages) > 1 else pages[0]

    def query_iter(
        self,
        pattern: str,
        strict: bool = False,
        page_size: Optional[int] = None,
    ) -> Iterator[Tuple[str, ...]]:
        """Stream a result's rows page by page (constant client memory).

        The stream is pinned to the snapshot the first page was answered
        from: maintenance applied mid-stream does not change what this
        iterator yields.  Closing the generator early releases the
        server-side cursor (:meth:`query_pages` guarantees it).
        """
        pages = self.query_pages(
            pattern, strict=strict,
            page_size=page_size if page_size is not None else self.page_size,
        )
        try:
            for page in pages:
                for row in page.rows:
                    yield tuple(row)
        finally:
            # Deterministic, not refcount-dependent: closing the page
            # generator runs its cursor cleanup even on early break.
            pages.close()

    def _abandon_cursor(self, page: Optional[QueryResultPage]) -> None:
        """Best-effort close of a stream abandoned before exhaustion."""
        if (
            page is not None and not page.complete
            and page.cursor is not None and self.connected
        ):
            try:
                self._request(
                    CloseCursorRequest(cursor=page.cursor), retryable=False
                )
            except Exception:
                pass  # the connection (and with it the cursor) may be gone

    def query_batch(
        self, patterns: Iterable[str], strict: bool = False
    ) -> List[QueryResultPage]:
        """Answer many patterns against one consistent server snapshot."""
        request = BatchRequest(patterns=tuple(patterns), strict=strict)
        response = self._expect(request, BatchResponse)
        finished: List[QueryResultPage] = []
        try:
            for page in response.results:
                finished.append(self._finish_pages(page))
        except BaseException:
            # A failure while finishing result k must not strand the
            # cursors the batch reply opened for results k+1..n — the
            # caller never sees those pages, so nothing else would ever
            # close them.  (_finish_pages cleans up result k itself.)
            for page in response.results[len(finished) + 1:]:
                self._abandon_cursor(page)
            raise
        return finished

    def _finish_pages(self, first: QueryResultPage) -> QueryResultPage:
        pages = [first]
        try:
            while not pages[-1].complete and pages[-1].cursor is not None:
                pages.append(
                    self._expect(
                        FetchRequest(cursor=pages[-1].cursor), QueryResultPage,
                        retryable=False,
                    )
                )
        except BaseException:
            self._abandon_cursor(pages[-1])
            raise
        return QueryResultPage.merge(pages) if len(pages) > 1 else first

    def add_facts(self, facts: FactsLike) -> AddFactsResponse:
        """Insert base facts; returns the typed maintenance report.

        Safe to retry: insertion is monotone, so a replayed batch changes
        nothing and publishes no new generation.  On a read-only follower
        the write is re-sent to the leader the redirect names (see
        ``follow_redirects``).
        """
        request = AddFactsRequest(facts=_normalize_facts(facts))
        try:
            return self._expect(request, AddFactsResponse)
        except NotLeaderError as error:
            if not self.follow_redirects or not error.leader:
                raise
            return self._redirect(error.leader)._expect(request, AddFactsResponse)

    def _redirect(self, leader: str) -> DatalogClient:
        """The cached connection to the leader a follower redirected us to."""
        from repro.api.transport import parse_address

        host, port = parse_address(leader)
        client = self._redirect_client
        if client is None or (client.host, client.port) != (host, port):
            if client is not None:
                client.close()
            client = DatalogClient(
                host,
                port,
                timeout=self.timeout,
                retries=self.retries,
                retry_backoff_seconds=self.retry_backoff_seconds,
                page_size=self.page_size,
                max_frame_bytes=self.max_frame_bytes,
                # One hop only: a leader redirecting elsewhere means the
                # fleet disagrees about its topology — surface that.
                follow_redirects=False,
            )
            self._redirect_client = client
        return client

    def add_fact(self, predicate: str, *values: str) -> AddFactsResponse:
        return self.add_facts([(predicate, values)])

    def stats(self) -> ServerStats:
        return self._expect(StatsRequest(), ServerStats)

    def durability(self) -> Optional[Mapping[str, Any]]:
        """The server's durable-storage counters, or ``None`` if in-memory.

        A durable backend (one built with ``data_dir=``) reports its WAL
        segment/record counts, last snapshot generation and the recovery
        report of its most recent restart.
        """
        return self.stats().durability

    def explain(self) -> str:
        return self._expect(ExplainRequest(), ExplainResponse).text

    def lint(self, patterns: Iterable[str] = ()) -> DiagnosticReport:
        """The server's diagnostic report for its loaded program.

        Diagnostics arrive with their stable codes, severities and 1-based
        source spans intact — the same report ``engine.lint()`` returns
        in-process.  ``patterns`` optionally checks query atoms against
        the program's predicate signatures.
        """
        return self._expect(
            LintRequest(patterns=tuple(patterns)), LintResponse
        ).report

    def watch(
        self,
        pattern: str,
        strict: bool = False,
        initial: bool = True,
        heartbeats: bool = False,
    ) -> Watch:
        """Open a continuous query; returns an iterator of exact deltas.

        Opens a *dedicated* connection (on the threaded transport a watch
        flips its connection to server-push for good, so it cannot share
        this client's request connection) and sends one ``watch`` frame.
        The returned :class:`Watch` yields
        :class:`~repro.api.types.SubscriptionDelta` frames — the initial
        result set first (``initial=True``) unless ``initial=False`` was
        passed — and raises the typed library exception when the server
        terminates the stream (e.g.
        :class:`~repro.errors.SlowConsumerError` after falling behind).
        Closing the watch (or its connection) cancels the subscription
        server-side::

            with client.watch("pair(X, Y)") as watch:
                for delta in watch:
                    handle(delta.rows)
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # A push stream blocks until the server has something to say;
            # heartbeats bound the silence, not the client's socket timeout.
            sock.settimeout(None)
            reader = sock.makefile("rb")
            writer = sock.makefile("wb")
            request = WatchRequest(pattern=pattern, strict=strict, initial=initial)
            send_json(writer, encode_request(request), self.max_frame_bytes)
            message = recv_json(reader, self.max_frame_bytes)
            if message is None:
                raise ProtocolError("server closed the connection mid-watch")
            response = decode_response(message)
            if isinstance(response, ApiError):
                response.raise_()
            if not isinstance(response, WatchingResponse):
                raise ProtocolError(
                    f"expected a watching reply to 'watch', "
                    f"got {type(response).__name__}"
                )
        except BaseException:
            sock.close()
            raise
        return Watch(
            sock, reader, writer, response, heartbeats, self.max_frame_bytes
        )

    def raw_request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw wire object and return the raw reply (diagnostics)."""
        if self._socket is None:
            self._open()
        assert self._writer is not None and self._reader is not None
        send_json(self._writer, message, self.max_frame_bytes)
        reply = recv_json(self._reader, self.max_frame_bytes)
        if reply is None:
            raise ProtocolError("server closed the connection mid-request")
        return reply

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"DatalogClient({self.host}:{self.port}, {state})"


class Watch:
    """One live watch stream over its own blocking connection.

    Iterating yields :class:`~repro.api.types.SubscriptionDelta` frames
    exactly as the server pushes them; heartbeat frames are swallowed
    unless the watch was opened with ``heartbeats=True`` (then they are
    yielded too, as :class:`~repro.api.types.HeartbeatFrame` — useful for
    liveness checks).  A server-side termination (slow consumer, shutdown)
    raises the typed library exception its error code names and the
    iterator ends.  :meth:`close` — or leaving the ``with`` block — drops
    the connection, which cancels the subscription server-side.
    """

    def __init__(
        self,
        sock: socket.socket,
        reader: BinaryIO,
        writer: BinaryIO,
        ack: WatchingResponse,
        heartbeats: bool,
        max_frame_bytes: int,
    ) -> None:
        self._socket: Optional[socket.socket] = sock
        self._reader = reader
        self._writer = writer
        self._heartbeats = heartbeats
        self._max_frame_bytes = max_frame_bytes
        #: The server-assigned subscription id.
        self.subscription = ack.subscription
        #: The canonical pattern the server registered.
        self.pattern = ack.pattern
        #: Generation the initial result set was anchored on.
        self.generation = ack.generation
        #: The server's idle keep-alive cadence, in seconds.
        self.heartbeat_seconds = ack.heartbeat_seconds

    def __iter__(self) -> Watch:
        return self

    def __next__(self) -> Union[SubscriptionDelta, HeartbeatFrame]:
        while True:
            if self._socket is None:
                raise StopIteration
            try:
                message = recv_json(self._reader, self._max_frame_bytes)
            except (OSError, ValueError):
                self.close()
                raise StopIteration from None
            if message is None:
                self.close()
                raise StopIteration
            response = decode_response(message)
            if isinstance(response, ApiError):
                self.close()
                response.raise_()
            if isinstance(response, HeartbeatFrame):
                if self._heartbeats:
                    return response
                continue
            if isinstance(response, SubscriptionDelta):
                return response
            raise ProtocolError(
                f"unexpected {type(response).__name__} frame on a watch stream"
            )

    def close(self) -> None:
        """Drop the stream; the server unsubscribes on disconnect."""
        sock, self._socket = self._socket, None
        if sock is None:
            return
        for stream in (self._reader, self._writer):
            try:
                stream.close()
            except OSError:
                pass
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> Watch:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "open" if self._socket is not None else "closed"
        return f"Watch({self.subscription}, {self.pattern!r}, {state})"
