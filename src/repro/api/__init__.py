"""The versioned public API of the Datalog service.

This package is the single wire-stable surface over the serving engine:

* :mod:`repro.api.types` — frozen request/response dataclasses, stable
  error codes, JSON codecs and schema-version negotiation (``"v": 1``);
* :mod:`repro.api.service` — typed dispatch over a
  :class:`~repro.engine.server.DatalogServer` /
  :class:`~repro.engine.session.DatalogSession` backend, with cursor-based
  pagination and exception-to-:class:`ApiError` mapping;
* :mod:`repro.api.protocol` — length-prefixed newline-JSON framing;
* :mod:`repro.api.transport` — the threading TCP server
  (``repro serve program.sdl --tcp :4321``);
* :mod:`repro.api.client` — the blocking :class:`DatalogClient` with
  streaming cursors, retries and live-query :meth:`~DatalogClient.watch`
  streams (``repro client :4321``, ``repro watch :4321 'p(X)'``).

Everything older (``engine_api`` returns, ``DatalogSession`` /
``DatalogServer`` methods, the CLI's free-text serve loop) keeps working,
but new integrations should speak these types: they are the compatibility
contract every transport — including the asyncio front-end and async
client in :mod:`repro.live` — honours.
"""

from repro.api.client import DatalogClient, Watch
from repro.api.protocol import MAX_FRAME_BYTES, read_frame, recv_json, send_json, write_frame
from repro.api.service import DatalogService
from repro.api.transport import DatalogTCPServer, parse_address, serve_tcp
from repro.api.types import (
    AddFactsRequest,
    AddFactsResponse,
    ApiError,
    BatchRequest,
    BatchResponse,
    ClosedResponse,
    CloseCursorRequest,
    ErrorCode,
    ExplainRequest,
    ExplainResponse,
    FetchRequest,
    LintRequest,
    LintResponse,
    PingRequest,
    PongResponse,
    QueryRequest,
    QueryResultPage,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    ServerStats,
    StatsRequest,
    SubscriptionDelta,
    UnwatchedResponse,
    UnwatchRequest,
    WatchingResponse,
    WatchRequest,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

__all__ = [
    "AddFactsRequest",
    "AddFactsResponse",
    "ApiError",
    "BatchRequest",
    "BatchResponse",
    "CloseCursorRequest",
    "ClosedResponse",
    "DatalogClient",
    "DatalogService",
    "DatalogTCPServer",
    "ErrorCode",
    "ExplainRequest",
    "ExplainResponse",
    "FetchRequest",
    "LintRequest",
    "LintResponse",
    "MAX_FRAME_BYTES",
    "PingRequest",
    "PongResponse",
    "QueryRequest",
    "QueryResultPage",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "ServerStats",
    "StatsRequest",
    "SubscriptionDelta",
    "UnwatchRequest",
    "UnwatchedResponse",
    "Watch",
    "WatchRequest",
    "WatchingResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "parse_address",
    "read_frame",
    "recv_json",
    "send_json",
    "serve_tcp",
    "write_frame",
]
