"""The extended relational model with sequences (Section 2.2 of the paper).

A *relation of arity k* is a finite set of k-tuples of sequences; a
*database* is a named collection of relations.  Databases convert to and
from sets of ground atoms (the form used by the fixpoint semantics).
"""

from repro.database.relation import SequenceRelation
from repro.database.schema import RelationSchema, DatabaseSchema
from repro.database.database import SequenceDatabase

__all__ = [
    "DatabaseSchema",
    "RelationSchema",
    "SequenceDatabase",
    "SequenceRelation",
]
