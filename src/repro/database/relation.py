"""Relations over sequences (Section 2.2 of the paper).

A relation of arity ``k`` over an alphabet is a finite set of ``k``-tuples of
sequences.  :class:`SequenceRelation` stores such a set in an interned
columnar layout:

* every :class:`~repro.sequences.Sequence` is interned process-wide, so a
  row is represented internally as a tuple of small integer *intern ids* —
  membership tests hash a few ints instead of re-hashing strings;
* each column additionally keeps a flat ``array('q')`` of intern ids,
  appended in row order — the batch join kernels
  (:mod:`repro.engine.kernels`) read whole row-ranges of these arrays
  instead of constructing per-row ``Sequence`` tuples;
* rows are also kept in an append-only insertion-order list, which gives
  iteration a **zero-copy snapshot**: capturing ``len(rows)`` before
  iterating makes concurrent inserts (the fixpoint engine inserts while a
  later clause still scans) invisible without copying the store;
* hash indexes over any *combination* of columns are built on demand the
  first time a lookup binds that column set, then maintained incrementally.
  Buckets hold row *positions* (ascending, append-only), so a version
  window clips a bucket with one binary search and id-keyed probes return
  positions straight into the column arrays.

The append-only layout also yields cheap *delta views*
(:class:`RelationDelta`): a view of the rows inserted after a version mark,
which is what predicate-level semi-naive evaluation iterates instead of a
materialised delta relation.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.sequences import Sequence, as_sequence

SequenceTuple = Tuple[Sequence, ...]
IdTuple = Tuple[int, ...]
#: A composite hash index: id-key -> ascending row positions.
PositionIndex = Dict[IdTuple, List[int]]


def bucket_prefix_length(bucket: List[int], stop: int) -> int:
    """How many leading positions of an ascending bucket lie below ``stop``.

    Fast-paths the common case (the whole bucket inside the window) with a
    single comparison before falling back to binary search.
    """
    length = len(bucket)
    if not length or bucket[length - 1] < stop:
        return length
    return bisect_left(bucket, stop)


class SequenceRelation:
    """A finite set of tuples of sequences with on-demand composite indexes.

    Concurrency contract: one writer (the evaluation/maintenance thread)
    and any number of lock-free readers.  Reads iterate the append-only
    row store under captured bounds; the one structure a reader may
    *create* — a composite index — is built and registered under
    ``_lock``, and the writer maintains the registered indexes under the
    same lock, so a half-built index can neither be observed nor miss a
    row that raced its construction.
    """

    __slots__ = (
        "name", "arity", "_positions", "_rows", "_columns", "_version",
        "_indexes", "_snapshot", "_sorted", "_lock",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable = ()):
        if arity < 1:
            raise ValidationError(f"relation arity must be at least 1, got {arity}")
        self.name = name
        self.arity = arity
        # Membership map: interned-id tuple -> position in the row store.
        # The positions make append-only windows cheap to intersect with
        # the persistent indexes (see RelationDelta.lookup).
        self._positions: Dict[IdTuple, int] = {}
        # Append-only insertion-order row store (decoded Sequence tuples).
        self._rows: List[SequenceTuple] = []
        # Per-column intern-id arrays in row order: _columns[c][p] is the
        # intern id of row p's value in column c.  The batch kernels slice
        # these instead of touching _rows.
        self._columns: Tuple[array, ...] = tuple(array("q") for _ in range(arity))
        # Monotonic mutation counter; never decremented, even by discard.
        self._version = 0
        # _indexes[(c1, c2, ...)][(id1, id2, ...)] -> ascending row
        # positions, built lazily on first lookup over that column set.
        self._indexes: Dict[Tuple[int, ...], PositionIndex] = {}
        self._snapshot: Optional[FrozenSet[SequenceTuple]] = None
        self._sorted: Optional[List[SequenceTuple]] = None
        # Guards _rows/_positions/_indexes against the build-vs-insert race
        # (see the class docstring); plain reads never take it.
        self._lock = threading.Lock()
        for row in tuples:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Iterable) -> bool:
        """Add a tuple (coercing strings to sequences); return True if new."""
        normalized = tuple(as_sequence(value) for value in row)
        if len(normalized) != self.arity:
            raise ValidationError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got a tuple of length {len(normalized)}"
            )
        key = tuple(value.intern_id for value in normalized)
        if key in self._positions:
            return False
        with self._lock:
            position = len(self._rows)
            # Columns are appended before the row becomes visible in _rows,
            # so a lock-free reader that sees row p always finds its ids in
            # every column array.
            for column, value_id in enumerate(key):
                self._columns[column].append(value_id)
            self._positions[key] = position
            self._rows.append(normalized)
            self._version += 1
            for columns, index in self._indexes.items():
                index_key = tuple(key[column] for column in columns)
                bucket = index.get(index_key)
                if bucket is None:
                    index[index_key] = [position]
                else:
                    bucket.append(position)
        self._snapshot = None
        self._sorted = None
        return True

    def add_all(self, rows: Iterable[Iterable]) -> int:
        """Add many tuples; return the number actually inserted."""
        inserted = 0
        for row in rows:
            if self.add(row):
                inserted += 1
        return inserted

    def extend_rows(self, normalized_rows: Iterable[SequenceTuple]) -> int:
        """Append many already-normalized tuples; return how many were new.

        The bulk counterpart of :meth:`add` for recovery-sized insertions
        (:meth:`repro.engine.interpretation.Interpretation.bulk_load`):
        rows must already be tuples of :class:`Sequence` values of this
        relation's arity.  Semantically identical to adding each row, but
        the lock is taken once and the version counter advances in one
        step — per-row overhead is what dominates restoring a large
        serialized model.
        """
        normalized_rows = list(normalized_rows)
        arity = self.arity
        for normalized in normalized_rows:
            if len(normalized) != arity:
                raise ValidationError(
                    f"relation {self.name!r} has arity {self.arity}, "
                    f"got a tuple of length {len(normalized)}"
                )
        inserted = 0
        with self._lock:
            positions = self._positions
            rows = self._rows
            columns = self._columns
            if not positions and not self._indexes:
                # Columnar fast path for the common restore shape: the
                # relation is fresh, so there is nothing to dedup against
                # and no index buckets to maintain.  Keys, columns and
                # positions are built with C-level bulk operations; fall
                # through to the per-row path only if the input itself
                # repeats a row.
                keys = [
                    tuple(value.intern_id for value in normalized)
                    for normalized in normalized_rows
                ]
                new_positions = dict(zip(keys, range(len(keys))))
                if len(new_positions) == len(keys):
                    for column, ids in enumerate(zip(*keys)):
                        columns[column].extend(ids)
                    rows.extend(normalized_rows)
                    positions.update(new_positions)
                    self._version += len(keys)
                    if keys:
                        self._snapshot = None
                        self._sorted = None
                    return len(keys)
            index_items = list(self._indexes.items())
            for normalized in normalized_rows:
                key = tuple(value.intern_id for value in normalized)
                if key in positions:
                    continue
                position = len(rows)
                for column, value_id in enumerate(key):
                    columns[column].append(value_id)
                positions[key] = position
                rows.append(normalized)
                for index_columns, index in index_items:
                    index_key = tuple(key[column] for column in index_columns)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = [position]
                    else:
                        bucket.append(position)
                inserted += 1
            self._version += inserted
        if inserted:
            self._snapshot = None
            self._sorted = None
        return inserted

    def discard(self, row: Iterable) -> bool:
        """Remove a tuple if present; return True if it was there.

        Removal is rare (the fixpoint engine only ever inserts), so it pays
        the cost of rebuilding the append-only row list and dropping the
        lazily-built indexes rather than complicating every lookup with
        tombstones.
        """
        normalized = tuple(as_sequence(value) for value in row)
        key = tuple(value.intern_id for value in normalized)
        if key not in self._positions:
            return False
        with self._lock:
            self._rows = [
                existing for existing in self._rows if existing != normalized
            ]
            self._positions = {
                tuple(value.intern_id for value in existing): position
                for position, existing in enumerate(self._rows)
            }
            self._columns = tuple(
                array("q", (row[column].intern_id for row in self._rows))
                for column in range(self.arity)
            )
            # A removal is still a change: the counter must keep moving
            # forward so version-gated consumers re-examine the relation.
            self._version += 1
            self._indexes = {}
        self._snapshot = None
        self._sorted = None
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, row: object) -> bool:
        try:
            key = tuple(as_sequence(value).intern_id for value in row)  # type: ignore[union-attr]
        except TypeError:
            return False
        return key in self._positions

    def __iter__(self) -> Iterator[SequenceTuple]:
        return self._snapshot_iter()

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SequenceRelation):
            return NotImplemented
        return (
            other.name == self.name
            and other.arity == self.arity
            and other._positions.keys() == self._positions.keys()
        )

    def __repr__(self) -> str:
        return f"SequenceRelation({self.name!r}/{self.arity}, {len(self._rows)} tuples)"

    @property
    def version(self) -> int:
        """Monotonic mutation counter (adds and discards both advance it).

        While the relation is insert-only — the fixpoint engine's case —
        the counter equals the row count, so a version doubles as a
        position in the append-only row list.  After a discard the two
        drift apart; :meth:`delta_view` compensates conservatively.
        """
        return self._version

    def _snapshot_iter(self, start: int = 0, stop: Optional[int] = None) -> Iterator[SequenceTuple]:
        """Iterate rows [start, stop) of the append-only store without copying.

        The bound is captured before iteration begins, so inserts performed
        while the iterator is live are simply not seen.
        """
        rows = self._rows
        if stop is None:
            stop = len(rows)
        for position in range(start, stop):
            yield rows[position]

    def tuples(self) -> FrozenSet[SequenceTuple]:
        """A frozen snapshot of the tuples (cached between mutations)."""
        if self._snapshot is None:
            self._snapshot = frozenset(self._rows)
        return self._snapshot

    def sorted_tuples(self) -> List[SequenceTuple]:
        """Tuples ordered lexicographically (cached between mutations).

        A copy is returned so callers cannot corrupt the cache.
        """
        if self._sorted is None:
            self._sorted = sorted(
                self._rows, key=lambda row: tuple(value.text for value in row)
            )
        return list(self._sorted)

    def ensure_index(self, columns: Tuple[int, ...]) -> PositionIndex:
        """Build (once) and return the composite hash index for ``columns``.

        Thread-safe against the single writer: the build-and-register runs
        under the relation lock, so it sees a consistent row store and the
        writer's incremental maintenance can never miss (or double-insert)
        a row that raced the construction.  Buckets hold row *positions*
        in ascending order, which window views clip with a binary search
        (see :meth:`RelationDelta.lookup`).
        """
        index = self._indexes.get(columns)
        if index is not None:
            return index
        for column in columns:
            if column < 0 or column >= self.arity:
                raise ValidationError(
                    f"column {column} out of range for relation {self.name!r}"
                )
        with self._lock:
            index = self._indexes.get(columns)
            if index is None:
                index = {}
                column_arrays = [self._columns[column] for column in columns]
                for position in range(len(self._rows)):
                    index_key = tuple(ids[position] for ids in column_arrays)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = [position]
                    else:
                        bucket.append(position)
                self._indexes[columns] = index
        return index

    def lookup(self, bindings: Dict[int, Sequence]) -> Iterator[SequenceTuple]:
        """Iterate tuples whose columns match the given ``{column: value}`` map.

        Columns are 0-based.  With an empty binding map this iterates a
        zero-copy snapshot of the whole relation.  Otherwise the composite
        index over exactly the bound columns is consulted (built on first
        use), so no post-filtering and no bucket copying is needed.
        """
        if not bindings:
            yield from self._snapshot_iter()
            return
        columns = tuple(sorted(bindings))
        index = self.ensure_index(columns)
        index_key = tuple(as_sequence(bindings[column]).intern_id for column in columns)
        bucket = index.get(index_key)
        if not bucket:
            return
        # Snapshot bound: appends during iteration are not seen.
        rows = self._rows
        stop = len(bucket)
        for bucket_position in range(stop):
            yield rows[bucket[bucket_position]]

    def probe_positions(
        self,
        columns: Tuple[int, ...],
        key: IdTuple,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> List[int]:
        """Row positions in ``[start, stop)`` whose ``columns`` hold ``key``.

        The batch kernels' join probe: both the key and the result are
        plain ints (intern ids / row positions), so a probe never decodes
        a :class:`~repro.sequences.Sequence`.  The bucket is clipped to
        the window with binary searches on its ascending positions.
        """
        index = self.ensure_index(columns)
        bucket = index.get(key)
        if not bucket:
            return []
        if stop is None:
            stop = len(self._rows)
        high = bucket_prefix_length(bucket, stop)
        low = bisect_left(bucket, start, 0, high) if start else 0
        return bucket[low:high]

    def delta_view(self, start_version: int) -> RelationDelta:
        """A live view of the rows inserted at or after ``start_version``.

        Versions double as row positions only while the relation is
        insert-only.  If discards have made the version counter run ahead
        of the row count, the window start is shifted back by the
        difference — a safe over-approximation (the view may replay some
        older rows, which semi-naive evaluation deduplicates, but it can
        never miss a new one).
        """
        drift = self._version - len(self._rows)
        start = max(0, start_version - drift)
        return RelationDelta(self, start, len(self._rows))

    def column_values(self, column: int) -> Set[Sequence]:
        """The distinct values appearing in a column.

        Reads the column's intern-id array directly — building (and
        permanently retaining) a single-column hash index just to list
        distinct values would bloat index memory for no lookup benefit.
        """
        if column < 0 or column >= self.arity:
            raise ValidationError(
                f"column {column} out of range for relation {self.name!r}"
            )
        stop = len(self._rows)
        return {
            Sequence.from_intern_id(value_id)
            for value_id in set(self._columns[column][:stop])
        }

    def id_columns(self) -> Tuple[array, ...]:
        """The per-column intern-id arrays in row order (read-only view).

        ``id_columns()[c][p]`` is the intern id of row ``p``'s value in
        column ``c``.  Callers must capture a row bound (``len(relation)``)
        before slicing; ids past the bound belong to rows appended after
        the snapshot was taken.
        """
        return self._columns

    def id_column(self, column: int) -> array:
        """The intern-id array for one column (see :meth:`id_columns`)."""
        if column < 0 or column >= self.arity:
            raise ValidationError(
                f"column {column} out of range for relation {self.name!r}"
            )
        return self._columns[column]

    def id_keys(self) -> Dict[IdTuple, int]:
        """The membership map: full-row id tuple -> row position.

        Treat as read-only; the batch head kernel dedups derived rows
        against these keys without decoding sequences.
        """
        return self._positions

    def all_sequences(self) -> Set[Sequence]:
        """Every sequence appearing anywhere in the relation."""
        values: Set[Sequence] = set()
        for row in self._rows:
            values.update(row)
        return values

    def copy(self) -> SequenceRelation:
        """An independent copy of the relation."""
        return SequenceRelation(self.name, self.arity, self._rows)


class RelationDelta:
    """The rows of a relation appended within a version window.

    Used by predicate-level semi-naive evaluation (a clause that last ran
    at relation version ``v`` only needs to join against the rows appended
    since ``v``) and by the serving layer's model snapshots (a pinned view
    ``[0, n)`` of the whole store).  The view shares the relation's
    append-only row list, so it is zero-copy.  Indexed lookups come in two
    flavours:

    * a *full-prefix* window (``start == 0``, the snapshot case) consults
      the relation's persistent, incrementally-maintained composite index
      and takes the insertion-ordered prefix of each bucket whose row
      positions fall inside the window (binary search on the membership
      map's positions) — no per-snapshot index rebuild, O(log bucket) to
      bound;
    * a mid-store window (the semi-naive delta case) builds a window-local
      hash index once per column set — the view lives for a single clause
      firing, so the index stays small.

    Windows are invalidated by :meth:`SequenceRelation.discard` (positions
    shift); the fixpoint engine and the serving layer never discard.
    """

    __slots__ = ("relation", "start", "stop", "_indexes")

    def __init__(self, relation: SequenceRelation, start: int, stop: int):
        self.relation = relation
        self.start = max(0, start)
        self.stop = stop
        # Window-local indexes keyed like the persistent ones, but holding
        # only the window's row positions (absolute store positions).
        self._indexes: Dict[Tuple[int, ...], PositionIndex] = {}

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def arity(self) -> int:
        return self.relation.arity

    def __len__(self) -> int:
        return max(0, self.stop - self.start)

    def __bool__(self) -> bool:
        return self.stop > self.start

    def __iter__(self) -> Iterator[SequenceTuple]:
        return self.relation._snapshot_iter(self.start, self.stop)

    def lookup(self, bindings: Dict[int, Sequence]) -> Iterator[SequenceTuple]:
        """Iterate the window's rows matching the ``{column: value}`` map."""
        if not bindings:
            yield from self.relation._snapshot_iter(self.start, self.stop)
            return
        columns = tuple(sorted(bindings))
        index_key = tuple(
            as_sequence(bindings[column]).intern_id for column in columns
        )
        rows = self.relation._rows
        for position in self.probe_positions(columns, index_key):
            yield rows[position]

    def probe_positions(self, columns: Tuple[int, ...], key: IdTuple) -> List[int]:
        """Row positions inside the window whose ``columns`` hold ``key``.

        Three paths, cheapest first:

        * a *full-prefix* window (``start == 0``) consults the relation's
          persistent index and clips each ascending-position bucket to the
          window with one binary search — no per-snapshot rebuild;
        * a mid-store window whose column set already has a persistent
          index reuses it, clipping the bucket at both ends (two binary
          searches);
        * otherwise a window-local position index is built once per column
          set — the view lives for a single clause firing, so it stays
          small.
        """
        relation = self.relation
        if self.start == 0 or columns in relation._indexes:
            return relation.probe_positions(columns, key, self.start, self.stop)
        index = self._indexes.get(columns)
        if index is None:
            for column in columns:
                if column < 0 or column >= relation.arity:
                    raise ValidationError(
                        f"column {column} out of range for relation "
                        f"{relation.name!r}"
                    )
            index = {}
            column_arrays = [relation._columns[column] for column in columns]
            for position in range(self.start, min(self.stop, len(relation._rows))):
                index_key = tuple(ids[position] for ids in column_arrays)
                bucket = index.get(index_key)
                if bucket is None:
                    index[index_key] = [position]
                else:
                    bucket.append(position)
            self._indexes[columns] = index
        return index.get(key, [])
