"""Relations over sequences (Section 2.2 of the paper).

A relation of arity ``k`` over an alphabet is a finite set of ``k``-tuples of
sequences.  :class:`SequenceRelation` stores such a set with per-column
indexes so the evaluation engine can look tuples up by bound columns without
scanning the whole relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.sequences import Sequence, as_sequence

SequenceTuple = Tuple[Sequence, ...]


class SequenceRelation:
    """A finite set of tuples of sequences with per-column hash indexes."""

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int, tuples: Iterable = ()):
        if arity < 1:
            raise ValidationError(f"relation arity must be at least 1, got {arity}")
        self.name = name
        self.arity = arity
        self._tuples: Set[SequenceTuple] = set()
        # _indexes[column][value] -> set of tuples having that value in the column
        self._indexes: List[Dict[Sequence, Set[SequenceTuple]]] = [
            defaultdict(set) for _ in range(arity)
        ]
        for row in tuples:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Iterable) -> bool:
        """Add a tuple (coercing strings to sequences); return True if new."""
        normalized = tuple(as_sequence(value) for value in row)
        if len(normalized) != self.arity:
            raise ValidationError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got a tuple of length {len(normalized)}"
            )
        if normalized in self._tuples:
            return False
        self._tuples.add(normalized)
        for column, value in enumerate(normalized):
            self._indexes[column][value].add(normalized)
        return True

    def add_all(self, rows: Iterable[Iterable]) -> int:
        """Add many tuples; return the number actually inserted."""
        inserted = 0
        for row in rows:
            if self.add(row):
                inserted += 1
        return inserted

    def discard(self, row: Iterable) -> bool:
        """Remove a tuple if present; return True if it was there."""
        normalized = tuple(as_sequence(value) for value in row)
        if normalized not in self._tuples:
            return False
        self._tuples.discard(normalized)
        for column, value in enumerate(normalized):
            bucket = self._indexes[column].get(value)
            if bucket is not None:
                bucket.discard(normalized)
                if not bucket:
                    del self._indexes[column][value]
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, row: object) -> bool:
        try:
            normalized = tuple(as_sequence(value) for value in row)  # type: ignore[union-attr]
        except TypeError:
            return False
        return normalized in self._tuples

    def __iter__(self) -> Iterator[SequenceTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SequenceRelation):
            return NotImplemented
        return (
            other.name == self.name
            and other.arity == self.arity
            and other._tuples == self._tuples
        )

    def __repr__(self) -> str:
        return f"SequenceRelation({self.name!r}/{self.arity}, {len(self._tuples)} tuples)"

    def tuples(self) -> FrozenSet[SequenceTuple]:
        """A frozen snapshot of the tuples."""
        return frozenset(self._tuples)

    def sorted_tuples(self) -> List[SequenceTuple]:
        """Tuples ordered lexicographically (useful for stable output)."""
        return sorted(self._tuples, key=lambda row: tuple(value.text for value in row))

    def lookup(self, bindings: Dict[int, Sequence]) -> Iterator[SequenceTuple]:
        """Iterate tuples whose columns match the given ``{column: value}`` map.

        Columns are 0-based.  With an empty binding map this iterates the
        whole relation.  The smallest index bucket among the bound columns is
        scanned, so lookups with at least one bound column never touch more
        tuples than the most selective column admits.
        """
        if not bindings:
            yield from list(self._tuples)
            return
        smallest: Optional[Set[SequenceTuple]] = None
        for column, value in bindings.items():
            if column < 0 or column >= self.arity:
                raise ValidationError(
                    f"column {column} out of range for relation {self.name!r}"
                )
            bucket = self._indexes[column].get(as_sequence(value), set())
            if smallest is None or len(bucket) < len(smallest):
                smallest = bucket
            if not bucket:
                return
        assert smallest is not None
        for row in list(smallest):
            if all(row[column] == as_sequence(value) for column, value in bindings.items()):
                yield row

    def column_values(self, column: int) -> Set[Sequence]:
        """The distinct values appearing in a column."""
        if column < 0 or column >= self.arity:
            raise ValidationError(
                f"column {column} out of range for relation {self.name!r}"
            )
        return set(self._indexes[column])

    def all_sequences(self) -> Set[Sequence]:
        """Every sequence appearing anywhere in the relation."""
        values: Set[Sequence] = set()
        for row in self._tuples:
            values.update(row)
        return values

    def copy(self) -> "SequenceRelation":
        """An independent copy of the relation."""
        return SequenceRelation(self.name, self.arity, self._tuples)
