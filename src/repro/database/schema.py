"""Database schemas: named base predicates with fixed arities (Section 2.2).

The paper assigns a distinct predicate symbol of appropriate arity to each
relation of a database; these *base predicates* together form the database
schema.  The schema is what the finiteness notion of Definition 6 quantifies
over ("a finite least fixpoint for all instances of the schema").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import ValidationError


class RelationSchema:
    """The schema of a single relation: a predicate name and an arity."""

    __slots__ = ("name", "arity")

    def __init__(self, name: str, arity: int):
        if not name or not (name[0].islower() or name[0] == "_"):
            raise ValidationError(
                f"relation names must start with a lower-case letter, got {name!r}"
            )
        if arity < 1:
            raise ValidationError(f"relation arity must be at least 1, got {arity}")
        self.name = name
        self.arity = arity

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RelationSchema)
            and other.name == self.name
            and other.arity == self.arity
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class DatabaseSchema:
    """A collection of relation schemas keyed by predicate name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise ValidationError(
                f"conflicting arities for relation {relation.name!r}: "
                f"{existing.arity} and {relation.arity}"
            )
        self._relations[relation.name] = relation

    def declare(self, name: str, arity: int) -> RelationSchema:
        """Declare (or re-declare consistently) a relation and return its schema."""
        relation = RelationSchema(name, arity)
        self.add(relation)
        return relation

    def get(self, name: str) -> Optional[RelationSchema]:
        return self._relations.get(name)

    def arity_of(self, name: str) -> int:
        relation = self._relations.get(name)
        if relation is None:
            raise ValidationError(f"unknown relation {name!r}")
        return relation.arity

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        parts = ", ".join(str(relation) for relation in self)
        return f"DatabaseSchema({parts})"
