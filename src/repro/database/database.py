"""Sequence databases: named collections of sequence relations (Section 2.2).

A :class:`SequenceDatabase` is the input of a query: a tuple of relations
over sequences.  It converts to a set of ground atoms (the representation
used by the fixpoint semantics of Section 3.3) and back, and exposes its
active domain and extended active domain (Definition 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.database.relation import SequenceRelation
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ValidationError
from repro.language.atoms import Atom, ground_atom
from repro.language.clauses import Clause
from repro.language.terms import ConstantTerm
from repro.sequences import ExtendedDomain, Sequence


class SequenceDatabase:
    """A database over sequences: a mapping from predicate names to relations.

    Examples
    --------
    >>> db = SequenceDatabase()
    >>> db.add_fact("r", "abc")
    True
    >>> db.add_fact("r", "de")
    True
    >>> len(db.relation("r"))
    2
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[SequenceRelation] = ()):
        self._relations: Dict[str, SequenceRelation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise ValidationError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Iterable]) -> SequenceDatabase:
        """Build a database from ``{predicate: iterable of tuples/strings}``.

        Entries may be plain strings (unary relations) or tuples of strings.

        >>> db = SequenceDatabase.from_dict({"r": ["abc", "de"], "p": [("a", "b")]})
        >>> len(db.relation("p"))
        1
        """
        database = cls()
        for name, rows in data.items():
            for row in rows:
                if isinstance(row, (str, Sequence)):
                    database.add_fact(name, row)
                else:
                    database.add_fact(name, *row)
        return database

    @classmethod
    def from_json_dict(cls, data) -> SequenceDatabase:
        """Build a database from decoded JSON, validating shape and types.

        The expected shape is ``{"relation": ["seq", ["a", "b"], ...]}``: a
        row is either a string (unary relation) or a non-empty list of
        strings.  Unlike :meth:`from_dict` (a trusting programmatic helper),
        this constructor reports malformed input — an empty row, a JSON
        number, a nested list — with the offending relation and row named,
        so CLI users get an actionable error instead of an opaque crash.
        """
        if not isinstance(data, dict):
            raise ValidationError(
                "database JSON must be an object mapping relation names to "
                f"lists of rows, got {type(data).__name__}"
            )
        database = cls()
        for relation, rows in data.items():
            if isinstance(rows, str) or not isinstance(rows, (list, tuple)):
                raise ValidationError(
                    f"relation {relation!r}: expected a list of rows, got "
                    f"{rows!r}"
                )
            for row in rows:
                if isinstance(row, str):
                    database.add_fact(relation, row)
                    continue
                if not isinstance(row, (list, tuple)):
                    raise ValidationError(
                        f"relation {relation!r}: row {row!r} must be a string "
                        "or a list of strings"
                    )
                if not row:
                    raise ValidationError(
                        f"relation {relation!r}: empty row (a fact needs at "
                        "least one value)"
                    )
                for value in row:
                    if not isinstance(value, str):
                        raise ValidationError(
                            f"relation {relation!r}: row {list(row)!r} "
                            f"contains non-string value {value!r}"
                        )
                database.add_fact(relation, *row)
        return database

    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> SequenceDatabase:
        """Build a database from ground atoms."""
        database = cls()
        for atom in facts:
            values = []
            for arg in atom.args:
                if not isinstance(arg, ConstantTerm):
                    raise ValidationError(
                        f"database facts must be ground, got {atom}"
                    )
                values.append(arg.value)
            database.add_fact(atom.predicate, *values)
        return database

    @classmethod
    def single_input(cls, value) -> SequenceDatabase:
        """The database ``{input(sigma)}`` used for sequence functions (§2.2)."""
        database = cls()
        database.add_fact("input", value)
        return database

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_fact(self, predicate: str, *values) -> bool:
        """Insert a tuple into the named relation, creating it if necessary."""
        if not values:
            raise ValidationError("a fact needs at least one argument")
        relation = self._relations.get(predicate)
        if relation is None:
            relation = SequenceRelation(predicate, len(values))
            self._relations[predicate] = relation
        return relation.add(values)

    def add_relation(self, relation: SequenceRelation) -> None:
        """Add a whole relation (predicate must not already exist)."""
        if relation.name in self._relations:
            raise ValidationError(f"duplicate relation {relation.name!r}")
        self._relations[relation.name] = relation

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, predicate: str) -> SequenceRelation:
        """Return the named relation; raise if it does not exist."""
        relation = self._relations.get(predicate)
        if relation is None:
            raise ValidationError(f"unknown relation {predicate!r}")
        return relation

    def relation_or_none(self, predicate: str) -> Optional[SequenceRelation]:
        return self._relations.get(predicate)

    def predicates(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __contains__(self, predicate: object) -> bool:
        return predicate in self._relations

    def __iter__(self) -> Iterator[SequenceRelation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        """Total number of facts in the database."""
        return sum(len(relation) for relation in self._relations.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, SequenceDatabase):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{relation.name}/{relation.arity}:{len(relation)}"
            for relation in self._relations.values()
        )
        return f"SequenceDatabase({parts})"

    # ------------------------------------------------------------------
    # Conversions and domains
    # ------------------------------------------------------------------
    def schema(self) -> DatabaseSchema:
        """The schema (base predicates and arities) of the database."""
        return DatabaseSchema(
            RelationSchema(relation.name, relation.arity)
            for relation in self._relations.values()
        )

    def facts(self) -> List[Atom]:
        """All tuples as ground atoms, in a stable order."""
        atoms: List[Atom] = []
        for name in sorted(self._relations):
            relation = self._relations[name]
            for row in relation.sorted_tuples():
                atoms.append(ground_atom(name, *row))
        return atoms

    def fact_clauses(self) -> List[Clause]:
        """All tuples as fact clauses (each database atom is a bodyless clause)."""
        return [Clause(atom) for atom in self.facts()]

    def active_domain(self) -> Set[Sequence]:
        """The set of sequences occurring in the database (Definition 3)."""
        values: Set[Sequence] = set()
        for relation in self._relations.values():
            values |= relation.all_sequences()
        return values

    def extended_active_domain(self) -> ExtendedDomain:
        """The extended active domain of the database (Definition 3)."""
        return ExtendedDomain(self.active_domain())

    def size(self) -> int:
        """The paper's notion of database size (Definition 11): the number of
        sequences in the extended active domain."""
        return len(self.extended_active_domain())

    def copy(self) -> SequenceDatabase:
        """An independent copy of the database."""
        return SequenceDatabase(relation.copy() for relation in self._relations.values())
