"""Atoms and body literals of Sequence Datalog (Section 3.1).

If ``p`` is a predicate symbol of arity ``n`` and ``s1 ... sn`` are sequence
terms then ``p(s1, ..., sn)`` is an atom.  Additionally ``s1 = s2`` and
``s1 != s2`` are (comparison) atoms.  The constant body literal ``true`` is
used by the paper for facts written as rules (e.g. ``rep1(X, X) <- true``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.errors import ValidationError
from repro.language.terms import ConstantTerm, SequenceTerm


class BodyLiteral:
    """Base class for anything that may appear in a clause body.

    Parsed literals carry a :class:`~repro.language.spans.SourceSpan` in
    ``span``; programmatically built literals leave it ``None``.  Spans
    are not part of literal identity (``__eq__``/``__hash__`` ignore
    them), so fact interning and clause deduplication are unaffected.
    """

    __slots__ = ("span",)

    def sequence_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def index_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def is_constructive(self) -> bool:
        raise NotImplementedError

    def transducer_names(self) -> FrozenSet[str]:
        return frozenset()


class Atom(BodyLiteral):
    """A predicate atom ``p(s1, ..., sn)``.

    Atoms may appear both in heads and bodies.  The paper's restriction that
    constructive terms appear only in heads is enforced at the
    :class:`~repro.language.clauses.Clause` level because an `Atom` does not
    know where it sits.
    """

    __slots__ = ("predicate", "args")

    def __init__(self, predicate: str, args: Iterable[SequenceTerm] = ()):
        if not predicate:
            raise ValidationError("an atom needs a predicate symbol")
        if not (predicate[0].islower() or predicate[0] == "_"):
            raise ValidationError(
                f"predicate symbols must start with a lower-case letter, got {predicate!r}"
            )
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, SequenceTerm):
                raise ValidationError(
                    f"atom arguments must be sequence terms, got {arg!r}"
                )
        self.predicate = predicate
        self.args: Tuple[SequenceTerm, ...] = args
        self.span = None

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        """The (predicate, arity) pair identifying the relation."""
        return (self.predicate, len(self.args))

    def sequence_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.args:
            names |= arg.sequence_variables()
        return names

    def index_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.args:
            names |= arg.index_variables()
        return names

    def is_constructive(self) -> bool:
        return any(arg.is_constructive() for arg in self.args)

    def transducer_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.args:
            names |= arg.transducer_names()
        return names

    def is_ground(self) -> bool:
        """True if the atom contains no variables at all."""
        return not self.sequence_variables() and not self.index_variables()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("Atom", self.predicate, self.args))

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        args = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate}({args})"


class Comparison(BodyLiteral):
    """An equality ``s1 = s2`` or inequality ``s1 != s2`` between sequence terms.

    Comparisons may appear only in rule bodies.  They never contain
    constructive terms (those are restricted to heads).
    """

    EQ = "="
    NE = "!="

    __slots__ = ("left", "right", "operator")

    def __init__(self, left: SequenceTerm, right: SequenceTerm, operator: str = "="):
        if operator not in (self.EQ, self.NE):
            raise ValidationError(f"comparison operator must be '=' or '!=', got {operator!r}")
        for side in (left, right):
            if not isinstance(side, SequenceTerm):
                raise ValidationError("comparison operands must be sequence terms")
            if side.is_constructive():
                raise ValidationError(
                    "constructive terms may not appear in comparisons (rule bodies)"
                )
        self.left = left
        self.right = right
        self.operator = operator
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        return self.left.sequence_variables() | self.right.sequence_variables()

    def index_variables(self) -> FrozenSet[str]:
        return self.left.index_variables() | self.right.index_variables()

    def is_constructive(self) -> bool:
        return False

    def is_equality(self) -> bool:
        return self.operator == self.EQ

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Comparison)
            and other.left == self.left
            and other.right == self.right
            and other.operator == self.operator
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.right, self.operator))

    def __repr__(self) -> str:
        return f"Comparison({self.left!r}, {self.operator!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


class TrueLiteral(BodyLiteral):
    """The constant body literal ``true`` used for facts written as rules."""

    __slots__ = ()

    def __init__(self):
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        return frozenset()

    def index_variables(self) -> FrozenSet[str]:
        return frozenset()

    def is_constructive(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, TrueLiteral)

    def __hash__(self) -> int:
        return hash("TrueLiteral")

    def __repr__(self) -> str:
        return "TrueLiteral()"

    def __str__(self) -> str:
        return "true"


def ground_atom(predicate: str, *values) -> Atom:
    """Build a ground atom from plain strings/Sequences (a database fact)."""
    return Atom(predicate, [ConstantTerm(value) for value in values])
