"""Terms of Sequence Datalog and Transducer Datalog (Sections 3.1 and 7.1).

The language of terms has two layers:

*Index terms* are built from non-negative integers, index variables and the
keyword ``end`` combined with ``+`` and ``-``:

    ``3``, ``N + 3``, ``N - M``, ``end - 5``, ``end - 5 + M``

*Sequence terms* are built from constant sequences, sequence variables and
index terms:

* an *indexed term* ``s[n1 : n2]`` extracts a contiguous subsequence; its
  base ``s`` must be a variable or a constant (the paper explicitly excludes
  nested forms such as ``(S1 . S2)[1:N]`` and ``S[1:N][M:end]``);
* a *constructive term* ``s1 ++ s2`` concatenates sequences and may appear
  only in rule heads;
* a *transducer term* ``@T(s1, ..., sm)`` (Section 7.1) denotes the output of
  generalized transducer ``T`` on the given inputs and may also appear only
  in rule heads.  Transducer terms are closed under composition.

All term classes are immutable and hashable so they can be used as keys in
indexes built by the evaluation engine.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple, Union

from repro.errors import ValidationError
from repro.sequences import Sequence, as_sequence


# ----------------------------------------------------------------------
# Index terms
# ----------------------------------------------------------------------
class IndexTerm:
    """Base class of index terms (integers, index variables, ``end``, sums)."""

    __slots__ = ()

    def index_variables(self) -> FrozenSet[str]:
        """Names of the index variables occurring in the term."""
        raise NotImplementedError

    def uses_end(self) -> bool:
        """True if the keyword ``end`` occurs in the term."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class IndexConstant(IndexTerm):
    """A non-negative integer literal used as an index."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if value < 0:
            raise ValidationError(f"index constants must be non-negative, got {value}")
        self.value = int(value)

    def index_variables(self) -> FrozenSet[str]:
        return frozenset()

    def uses_end(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, IndexConstant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("IndexConstant", self.value))

    def __repr__(self) -> str:
        return f"IndexConstant({self.value})"

    def __str__(self) -> str:
        return str(self.value)


class IndexVariable(IndexTerm):
    """An index variable (ranges over the integers of the extended domain)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not name[0].isupper() and name[0] != "_":
            raise ValidationError(
                f"index variable names must start with an upper-case letter, got {name!r}"
            )
        self.name = name

    def index_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def uses_end(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, IndexVariable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("IndexVariable", self.name))

    def __repr__(self) -> str:
        return f"IndexVariable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class End(IndexTerm):
    """The keyword ``end``: the last position of the enclosing sequence."""

    __slots__ = ()

    def index_variables(self) -> FrozenSet[str]:
        return frozenset()

    def uses_end(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, End)

    def __hash__(self) -> int:
        return hash("End")

    def __repr__(self) -> str:
        return "End()"

    def __str__(self) -> str:
        return "end"


class IndexSum(IndexTerm):
    """A sum or difference of two index terms (``n1 + n2`` or ``n1 - n2``)."""

    __slots__ = ("left", "right", "operator")

    def __init__(self, left: IndexTerm, right: IndexTerm, operator: str = "+"):
        if operator not in ("+", "-"):
            raise ValidationError(f"index operator must be '+' or '-', got {operator!r}")
        if not isinstance(left, IndexTerm) or not isinstance(right, IndexTerm):
            raise ValidationError("IndexSum operands must be index terms")
        self.left = left
        self.right = right
        self.operator = operator

    def index_variables(self) -> FrozenSet[str]:
        return self.left.index_variables() | self.right.index_variables()

    def uses_end(self) -> bool:
        return self.left.uses_end() or self.right.uses_end()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IndexSum)
            and other.left == self.left
            and other.right == self.right
            and other.operator == self.operator
        )

    def __hash__(self) -> int:
        return hash(("IndexSum", self.left, self.right, self.operator))

    def __repr__(self) -> str:
        return f"IndexSum({self.left!r}, {self.right!r}, {self.operator!r})"

    def __str__(self) -> str:
        return f"{self.left}{self.operator}{self.right}"


# ----------------------------------------------------------------------
# Sequence terms
# ----------------------------------------------------------------------
class SequenceTerm:
    """Base class of sequence terms.

    Parsed terms carry a :class:`~repro.language.spans.SourceSpan` in
    ``span``; programmatically built terms leave it ``None``.  Spans are
    not part of term identity (``__eq__``/``__hash__`` ignore them).
    """

    __slots__ = ("span",)

    def sequence_variables(self) -> FrozenSet[str]:
        """Names of the sequence variables occurring in the term."""
        raise NotImplementedError

    def index_variables(self) -> FrozenSet[str]:
        """Names of the index variables occurring in the term."""
        raise NotImplementedError

    def is_constructive(self) -> bool:
        """True if the term creates new sequences (concatenation/transducer)."""
        raise NotImplementedError

    def transducer_names(self) -> FrozenSet[str]:
        """Names of transducers mentioned in the term."""
        return frozenset()


class ConstantTerm(SequenceTerm):
    """A constant sequence, e.g. ``"acgt"`` or the empty sequence ``""``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value: Sequence = as_sequence(value)
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        return frozenset()

    def index_variables(self) -> FrozenSet[str]:
        return frozenset()

    def is_constructive(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstantTerm) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ConstantTerm", self.value))

    def __repr__(self) -> str:
        return f"ConstantTerm({self.value.text!r})"

    def __str__(self) -> str:
        return f'"{self.value.text}"'


class SequenceVariable(SequenceTerm):
    """A sequence variable (ranges over sequences of the extended domain)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not (name[0].isupper() or name[0] == "_"):
            raise ValidationError(
                f"sequence variable names must start with an upper-case letter, got {name!r}"
            )
        self.name = name
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def index_variables(self) -> FrozenSet[str]:
        return frozenset()

    def is_constructive(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, SequenceVariable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("SequenceVariable", self.name))

    def __repr__(self) -> str:
        return f"SequenceVariable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class IndexedTerm(SequenceTerm):
    """An indexed term ``s[n1 : n2]`` extracting a contiguous subsequence.

    The base must be a variable or a constant: the paper forbids nested
    indexed terms and indexing of constructive terms, which keeps the
    distinction between structural and constructive recursion sharp.

    The shorthand ``s[n]`` of the paper corresponds to ``lo == hi`` and is
    produced by passing ``hi=None``.
    """

    __slots__ = ("base", "lo", "hi")

    def __init__(
        self,
        base: Union[ConstantTerm, SequenceVariable],
        lo: IndexTerm,
        hi: IndexTerm = None,
    ):
        if not isinstance(base, (ConstantTerm, SequenceVariable)):
            raise ValidationError(
                "the base of an indexed term must be a sequence variable or a "
                f"constant sequence, got {type(base).__name__}"
            )
        if not isinstance(lo, IndexTerm):
            raise ValidationError("the lower index must be an index term")
        if hi is None:
            hi = lo
        if not isinstance(hi, IndexTerm):
            raise ValidationError("the upper index must be an index term")
        self.base = base
        self.lo = lo
        self.hi = hi
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        return self.base.sequence_variables()

    def index_variables(self) -> FrozenSet[str]:
        return self.lo.index_variables() | self.hi.index_variables()

    def is_constructive(self) -> bool:
        return False

    def is_single_position(self) -> bool:
        """True for the shorthand form ``s[n]`` (equal index terms)."""
        return self.lo == self.hi

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IndexedTerm)
            and other.base == self.base
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash(("IndexedTerm", self.base, self.lo, self.hi))

    def __repr__(self) -> str:
        return f"IndexedTerm({self.base!r}, {self.lo!r}, {self.hi!r})"

    def __str__(self) -> str:
        if self.is_single_position():
            return f"{self.base}[{self.lo}]"
        return f"{self.base}[{self.lo}:{self.hi}]"


class ConcatTerm(SequenceTerm):
    """A constructive term ``s1 ++ s2 ++ ... ++ sk`` (concatenation).

    The parts may be constants, variables, indexed terms, or (in Transducer
    Datalog) transducer terms; they may not themselves be ``ConcatTerm``
    objects — nested concatenations are flattened at construction so that
    ``(a ++ b) ++ c`` and ``a ++ (b ++ c)`` are the same term, reflecting the
    associativity of concatenation.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[SequenceTerm]):
        flattened = []
        for part in parts:
            if isinstance(part, ConcatTerm):
                flattened.extend(part.parts)
            elif isinstance(part, SequenceTerm):
                flattened.append(part)
            else:
                raise ValidationError(
                    f"concatenation parts must be sequence terms, got {part!r}"
                )
        if len(flattened) < 2:
            raise ValidationError("a constructive term needs at least two parts")
        self.parts: Tuple[SequenceTerm, ...] = tuple(flattened)
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for part in self.parts:
            names |= part.sequence_variables()
        return names

    def index_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for part in self.parts:
            names |= part.index_variables()
        return names

    def is_constructive(self) -> bool:
        return True

    def transducer_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for part in self.parts:
            names |= part.transducer_names()
        return names

    def __eq__(self, other) -> bool:
        return isinstance(other, ConcatTerm) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("ConcatTerm", self.parts))

    def __repr__(self) -> str:
        return f"ConcatTerm({list(self.parts)!r})"

    def __str__(self) -> str:
        return " ++ ".join(str(part) for part in self.parts)


class TransducerTerm(SequenceTerm):
    """A transducer term ``@T(s1, ..., sm)`` (Section 7.1).

    The term denotes the output of the generalized transducer registered
    under ``name`` on the given argument sequences.  Transducer terms are
    closed under composition: an argument may itself be a transducer term.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[SequenceTerm]):
        if not name:
            raise ValidationError("a transducer term needs a transducer name")
        args = tuple(args)
        if not args:
            raise ValidationError("a transducer term needs at least one argument")
        for arg in args:
            if not isinstance(arg, SequenceTerm):
                raise ValidationError(
                    f"transducer arguments must be sequence terms, got {arg!r}"
                )
            if isinstance(arg, ConcatTerm):
                raise ValidationError(
                    "concatenation inside transducer arguments is not allowed; "
                    "use the append transducer instead"
                )
        self.name = name
        self.args: Tuple[SequenceTerm, ...] = args
        self.span = None

    def sequence_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.args:
            names |= arg.sequence_variables()
        return names

    def index_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.args:
            names |= arg.index_variables()
        return names

    def is_constructive(self) -> bool:
        return True

    def transducer_names(self) -> FrozenSet[str]:
        names = frozenset({self.name})
        for arg in self.args:
            names |= arg.transducer_names()
        return names

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TransducerTerm)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("TransducerTerm", self.name, self.args))

    def __repr__(self) -> str:
        return f"TransducerTerm({self.name!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        return f"@{self.name}({args})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def constant(value) -> ConstantTerm:
    """Build a constant sequence term from a string or Sequence."""
    return ConstantTerm(value)


def seq_var(name: str) -> SequenceVariable:
    """Build a sequence variable term."""
    return SequenceVariable(name)


def index_var(name: str) -> IndexVariable:
    """Build an index variable term."""
    return IndexVariable(name)


def index_const(value: int) -> IndexConstant:
    """Build an index constant term."""
    return IndexConstant(value)


END = End()
