"""Abstract syntax and concrete syntax of Sequence Datalog and Transducer Datalog.

The module hierarchy mirrors Section 3.1 (terms, atoms, clauses) and
Section 7.1 (transducer terms) of the paper:

* :mod:`repro.language.terms` -- index terms and sequence terms.
* :mod:`repro.language.atoms` -- predicate atoms and (in)equality atoms.
* :mod:`repro.language.clauses` -- clauses (rules/facts) and programs.
* :mod:`repro.language.parser` -- a text parser for both languages.

Concrete syntax accepted by the parser (summary)::

    suffix(X[N:end]) :- r(X).
    answer(X ++ Y)   :- r(X), r(Y).
    abcn("", "", "") :- true.
    p(X)             :- q(X), X[1] = "a", X != "".
    rnaseq(D, @transcribe(D)) :- dnaseq(D).      % transducer term

``++`` is the paper's concatenation operator (written as a bullet in the
paper), ``@name(...)`` is a transducer term, quoted strings are constant
sequences, ``""`` is the empty sequence, upper-case identifiers are
variables, ``end`` is the end-of-sequence index keyword.
"""

from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexedTerm,
    IndexSum,
    IndexTerm,
    IndexVariable,
    SequenceTerm,
    SequenceVariable,
    TransducerTerm,
    constant,
    index_var,
    seq_var,
)
from repro.language.atoms import Atom, BodyLiteral, Comparison, TrueLiteral
from repro.language.clauses import Clause, Program, fact, rule
from repro.language.parser import parse_atom, parse_clause, parse_program, parse_term

__all__ = [
    "Atom",
    "BodyLiteral",
    "Clause",
    "Comparison",
    "ConcatTerm",
    "ConstantTerm",
    "End",
    "IndexConstant",
    "IndexSum",
    "IndexTerm",
    "IndexVariable",
    "IndexedTerm",
    "Program",
    "SequenceTerm",
    "SequenceVariable",
    "TransducerTerm",
    "TrueLiteral",
    "constant",
    "fact",
    "index_var",
    "parse_atom",
    "parse_clause",
    "parse_program",
    "parse_term",
    "rule",
    "seq_var",
]
