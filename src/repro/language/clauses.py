"""Clauses and programs of Sequence Datalog / Transducer Datalog (Section 3.1).

A *clause* (rule) has a head atom and a body of literals.  The paper's two
syntactic restrictions are enforced here:

* constructive terms (concatenations and transducer terms) may appear only in
  the head of a clause, never in the body;
* indexed terms may not be nested (enforced by the term constructors).

A clause whose head contains a constructive term is a *constructive clause*.
A *program* is a set of clauses; :class:`Program` also exposes the structural
information needed by the analyses of Sections 5 and 8 (predicates defined,
base predicates, constructive clauses, transducers mentioned, guardedness).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import ValidationError
from repro.language.atoms import Atom, BodyLiteral, Comparison, TrueLiteral


class Clause:
    """A Sequence Datalog / Transducer Datalog clause ``head :- body``.

    A clause with an empty body (or a body consisting only of ``true``) whose
    head is ground is a *fact*.
    """

    __slots__ = ("head", "body", "span")

    def __init__(self, head: Atom, body: Iterable[BodyLiteral] = ()):
        if not isinstance(head, Atom):
            raise ValidationError("the head of a clause must be an atom")
        body = tuple(body)
        for literal in body:
            if not isinstance(literal, BodyLiteral):
                raise ValidationError(
                    f"clause bodies may contain only atoms, comparisons and 'true', got {literal!r}"
                )
            if literal.is_constructive():
                raise ValidationError(
                    "constructive terms may appear only in the head of a clause "
                    f"(offending literal: {literal})"
                )
        # Drop redundant `true` literals when other literals are present so
        # the evaluation engine never has to consider them.
        meaningful = tuple(lit for lit in body if not isinstance(lit, TrueLiteral))
        self.head = head
        self.body: Tuple[BodyLiteral, ...] = meaningful
        # Where the clause was parsed from (None when built programmatically);
        # never part of clause identity.
        self.span = None

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def is_fact(self) -> bool:
        """True if the clause has an empty body and a ground head."""
        return not self.body and self.head.is_ground()

    def is_constructive(self) -> bool:
        """True if the head contains a concatenation or transducer term."""
        return self.head.is_constructive()

    def body_atoms(self) -> List[Atom]:
        """The predicate atoms (not comparisons) of the body."""
        return [literal for literal in self.body if isinstance(literal, Atom)]

    def body_comparisons(self) -> List[Comparison]:
        """The comparison literals of the body."""
        return [literal for literal in self.body if isinstance(literal, Comparison)]

    def sequence_variables(self) -> FrozenSet[str]:
        names = self.head.sequence_variables()
        for literal in self.body:
            names |= literal.sequence_variables()
        return names

    def index_variables(self) -> FrozenSet[str]:
        names = self.head.index_variables()
        for literal in self.body:
            names |= literal.index_variables()
        return names

    def guarded_sequence_variables(self) -> FrozenSet[str]:
        """Sequence variables appearing in the body as a *direct* argument.

        The paper (Section 3.1 and Appendix B) calls a variable *guarded* in
        a clause when it occurs in the body as an argument of some predicate
        -- i.e. as a bare variable, not buried inside an indexed term.  For
        example ``X`` is guarded in ``p(X[1]) :- q(X)`` but unguarded in
        ``p(X) :- q(X[1])``.
        """
        guarded: Set[str] = set()
        for atom in self.body_atoms():
            for arg in atom.args:
                from repro.language.terms import SequenceVariable

                if isinstance(arg, SequenceVariable):
                    guarded.add(arg.name)
        return frozenset(guarded)

    def unguarded_sequence_variables(self) -> FrozenSet[str]:
        """Sequence variables of the clause that are not guarded."""
        return self.sequence_variables() - self.guarded_sequence_variables()

    def is_guarded(self) -> bool:
        """True if every sequence variable of the clause is guarded."""
        return not self.unguarded_sequence_variables()

    def transducer_names(self) -> FrozenSet[str]:
        """Transducers mentioned in the clause (head only, by construction)."""
        return self.head.transducer_names()

    def body_predicates(self) -> FrozenSet[str]:
        """Predicate symbols used in the body."""
        return frozenset(atom.predicate for atom in self.body_atoms())

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Clause)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return hash(("Clause", self.head, self.body))

    def __repr__(self) -> str:
        return f"Clause({self.head!r}, {list(self.body)!r})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(literal) for literal in self.body)
        return f"{self.head} :- {body}."


class Program:
    """An ordered collection of clauses.

    The order of clauses is irrelevant to the semantics (the fixpoint is the
    same) but is preserved for readable pretty-printing and deterministic
    evaluation traces.
    """

    __slots__ = ("clauses", "source")

    def __init__(self, clauses: Iterable[Clause] = ()):
        clause_list: List[Clause] = []
        for clause in clauses:
            if not isinstance(clause, Clause):
                raise ValidationError(f"programs contain clauses, got {clause!r}")
            clause_list.append(clause)
        self.clauses: Tuple[Clause, ...] = tuple(clause_list)
        # The program text this was parsed from (set by ``parse_program``,
        # None when built programmatically); used by diagnostics to render
        # source excerpts.  Never part of program identity.
        self.source = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return set(self.clauses) == set(other.clauses)

    def __hash__(self) -> int:
        return hash(frozenset(self.clauses))

    def __add__(self, other: Program) -> Program:
        return Program(self.clauses + tuple(other.clauses))

    def __repr__(self) -> str:
        return f"Program({len(self.clauses)} clauses)"

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self.clauses)

    # ------------------------------------------------------------------
    # Predicate-level queries
    # ------------------------------------------------------------------
    def head_predicates(self) -> FrozenSet[str]:
        """Predicates defined (appearing in some head) by the program (IDB)."""
        return frozenset(clause.head.predicate for clause in self.clauses)

    def body_predicates(self) -> FrozenSet[str]:
        """Predicates used in some body."""
        names: Set[str] = set()
        for clause in self.clauses:
            names |= clause.body_predicates()
        return frozenset(names)

    def predicates(self) -> FrozenSet[str]:
        """All predicate symbols mentioned anywhere in the program."""
        return self.head_predicates() | self.body_predicates()

    def base_predicates(self) -> FrozenSet[str]:
        """Predicates used in bodies but never defined: the database schema."""
        return self.body_predicates() - self.head_predicates()

    def clauses_for(self, predicate: str) -> List[Clause]:
        """The clauses whose head predicate is ``predicate``."""
        return [clause for clause in self.clauses if clause.head.predicate == predicate]

    def constructive_clauses(self) -> List[Clause]:
        """All constructive clauses of the program."""
        return [clause for clause in self.clauses if clause.is_constructive()]

    def is_constructive(self) -> bool:
        """True if any clause is constructive."""
        return any(clause.is_constructive() for clause in self.clauses)

    def is_guarded(self) -> bool:
        """True if every clause is guarded (Appendix B)."""
        return all(clause.is_guarded() for clause in self.clauses)

    def transducer_names(self) -> FrozenSet[str]:
        """All transducer names mentioned by the program."""
        names: Set[str] = set()
        for clause in self.clauses:
            names |= clause.transducer_names()
        return frozenset(names)

    def uses_transducers(self) -> bool:
        """True if the program is a Transducer Datalog program."""
        return bool(self.transducer_names())

    def signatures(self) -> Dict[str, int]:
        """Map each predicate to its arity; raise on inconsistent arities."""
        arities: Dict[str, int] = {}
        for clause in self.clauses:
            atoms = [clause.head] + clause.body_atoms()
            for atom in atoms:
                existing = arities.get(atom.predicate)
                if existing is None:
                    arities[atom.predicate] = atom.arity
                elif existing != atom.arity:
                    raise ValidationError(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{existing} and {atom.arity}"
                    )
        return arities

    def validate(self) -> None:
        """Run all structural checks; raise :class:`ValidationError` on failure."""
        self.signatures()

    def facts(self) -> List[Clause]:
        """The clauses that are facts."""
        return [clause for clause in self.clauses if clause.is_fact()]

    def rules(self) -> List[Clause]:
        """The clauses that are proper rules (non-facts)."""
        return [clause for clause in self.clauses if not clause.is_fact()]


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def rule(head: Atom, *body: BodyLiteral) -> Clause:
    """Build a clause from a head atom and body literals."""
    return Clause(head, body)


def fact(predicate: str, *values) -> Clause:
    """Build a ground fact clause ``predicate(values...).``"""
    from repro.language.atoms import ground_atom

    return Clause(ground_atom(predicate, *values))
