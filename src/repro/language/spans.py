"""Source spans: where a parsed construct came from.

The tokenizer has always reported 1-based line/column positions for
errors; this module makes positions a first-class value so *successfully*
parsed constructs remember where they came from too.  The parser stamps a
:class:`SourceSpan` on every term, atom, comparison and clause it builds
(see :mod:`repro.language.parser`), and the diagnostics engine
(:mod:`repro.analysis.diagnostics`) uses the spans to point at offending
source text.

Spans are deliberately *not* part of the identity of AST nodes: two atoms
parsed from different places still compare (and hash) equal, so fact
interning, clause deduplication and all engine indexes are untouched.
Programmatically constructed nodes simply have no span; use
:func:`span_of` to read a node's span without caring how it was built.

All coordinates are 1-based and inclusive: ``line``/``column`` address the
first character of the construct, ``end_line``/``end_column`` the last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class SourceSpan:
    """A contiguous region of program text (1-based, inclusive ends)."""

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        if self.line == self.end_line:
            return f"{self.line}:{self.column}-{self.end_column}"
        return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"

    def to_payload(self) -> Dict[str, int]:
        """The JSON-friendly wire form of the span."""
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> SourceSpan:
        return cls(
            line=int(payload["line"]),
            column=int(payload["column"]),
            end_line=int(payload["end_line"]),
            end_column=int(payload["end_column"]),
        )


def span_of(node: Any) -> Optional[SourceSpan]:
    """The source span of an AST node, or ``None`` if it has none.

    Nodes built programmatically (rather than parsed) carry no span; this
    accessor spares callers the ``getattr`` dance over ``__slots__``.
    """
    return getattr(node, "span", None)
