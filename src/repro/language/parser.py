"""Text parser for Sequence Datalog and Transducer Datalog programs.

Concrete syntax
---------------
::

    % comments run to the end of the line ('#' also works)
    suffix(X[N:end]) :- r(X).
    answer(X ++ Y)   :- r(X), r(Y).
    abcn("", "", "") :- true.
    abcn(X, Y, Z)    :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                        abcn(X[2:end], Y[2:end], Z[2:end]).
    rnaseq(D, @transcribe(D)) :- dnaseq(D).

* predicates and transducer names: identifiers starting with a lower-case
  letter;
* sequence variables and index variables: identifiers starting with an
  upper-case letter (or ``_``); the role (sequence vs index) is inferred from
  position -- inside ``[...]`` a variable is an index variable;
* constant sequences: double-quoted strings (``""`` is the empty sequence;
  the keyword ``eps`` is an alias);
* concatenation: ``++`` (the paper's bullet operator);
* transducer terms: ``@name(arg, ...)``;
* indexed terms: ``X[n1:n2]`` or the single-position shorthand ``X[n]``;
* index expressions: integers, index variables, ``end``, ``+`` and ``-``;
* rules use ``:-`` or ``<-``; every clause ends with a period.

The parser is a hand-written recursive-descent parser over a small tokenizer;
it reports 1-based line/column positions in :class:`~repro.errors.ParseError`
and stamps a :class:`~repro.language.spans.SourceSpan` on every term, atom,
comparison and clause it builds, so downstream analyses (most notably the
diagnostics engine) can point back at the offending source text.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence as TypingSequence

from repro.errors import ParseError
from repro.language.atoms import Atom, BodyLiteral, Comparison, TrueLiteral
from repro.language.clauses import Clause, Program
from repro.language.spans import SourceSpan
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexTerm,
    IndexVariable,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
    TransducerTerm,
)


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int
    end_column: int = 0  # 1-based inclusive column of the token's last character

    @property
    def span(self) -> SourceSpan:
        return SourceSpan(self.line, self.column, self.line, self.end_column)


_PUNCTUATION = [
    (":-", "ARROW"),
    ("<-", "ARROW"),
    ("!=", "NEQ"),
    ("++", "CONCAT"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    (",", "COMMA"),
    (".", "PERIOD"),
    (":", "COLON"),
    ("=", "EQ"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("@", "AT"),
]


def tokenize(text: str) -> List[Token]:
    """Split program text into tokens, stripping comments and whitespace."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char in "%#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise ParseError("unterminated string literal", line, column)
            value = text[index + 1:end]
            if "\n" in value:
                raise ParseError("string literals may not span lines", line, column)
            tokens.append(Token("STRING", value, line, column, column + (end - index)))
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            tokens.append(
                Token("INTEGER", text[start:index], line, column, column + (index - start) - 1)
            )
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            if word == "end":
                kind = "END"
            elif word == "true":
                kind = "TRUE"
            elif word == "eps":
                kind = "EPS"
            elif word[0].isupper() or word[0] == "_":
                kind = "VARIABLE"
            else:
                kind = "IDENT"
            tokens.append(Token(kind, word, line, column, column + len(word) - 1))
            column += index - start
            continue
        matched = False
        for literal, kind in _PUNCTUATION:
            if text.startswith(literal, index):
                tokens.append(Token(kind, literal, line, column, column + len(literal) - 1))
                index += len(literal)
                column += len(literal)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("EOF", "", line, column, column))
    return tokens


class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: TypingSequence[Token]):
        self._tokens = tokens
        self._position = 0
        self._last: Optional[Token] = None  # most recently consumed token

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "EOF":
            self._position += 1
            self._last = token
        return token

    def _span_from(self, start: Token) -> SourceSpan:
        """The span from ``start`` through the most recently consumed token."""
        last = self._last if self._last is not None else start
        return SourceSpan(start.line, start.column, last.line, last.end_column)

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} ({token.value!r})",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    def at_end(self) -> bool:
        return self._peek().kind == "EOF"

    # ------------------------------------------------------------------
    # Grammar rules
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        clauses = []
        while not self.at_end():
            clauses.append(self.parse_clause())
        return Program(clauses)

    def parse_clause(self) -> Clause:
        start = self._peek()
        head = self.parse_atom()
        body: List[BodyLiteral] = []
        if self._accept("ARROW"):
            body.append(self.parse_body_literal())
            while self._accept("COMMA"):
                body.append(self.parse_body_literal())
        self._expect("PERIOD")
        clause = Clause(head, body)
        clause.span = self._span_from(start)
        return clause

    def parse_body_literal(self) -> BodyLiteral:
        token = self._peek()
        if token.kind == "TRUE":
            self._advance()
            literal: BodyLiteral = TrueLiteral()
            literal.span = token.span
            return literal
        if token.kind == "IDENT":
            return self.parse_atom()
        left = self.parse_sequence_term()
        operator_token = self._peek()
        if operator_token.kind == "EQ":
            self._advance()
            right = self.parse_sequence_term()
            comparison = Comparison(left, right, Comparison.EQ)
        elif operator_token.kind == "NEQ":
            self._advance()
            right = self.parse_sequence_term()
            comparison = Comparison(left, right, Comparison.NE)
        else:
            raise ParseError(
                "expected a comparison operator ('=' or '!=') after a term literal",
                operator_token.line,
                operator_token.column,
            )
        comparison.span = self._span_from(token)
        return comparison

    def parse_atom(self) -> Atom:
        name = self._expect("IDENT")
        args: List[SequenceTerm] = []
        if self._accept("LPAREN"):
            if self._peek().kind != "RPAREN":
                args.append(self.parse_sequence_term())
                while self._accept("COMMA"):
                    args.append(self.parse_sequence_term())
            self._expect("RPAREN")
        atom = Atom(name.value, args)
        atom.span = self._span_from(name)
        return atom

    def parse_sequence_term(self) -> SequenceTerm:
        start = self._peek()
        parts = [self.parse_concat_part()]
        while self._accept("CONCAT"):
            parts.append(self.parse_concat_part())
        if len(parts) == 1:
            return parts[0]
        term = ConcatTerm(parts)
        term.span = self._span_from(start)
        return term

    def parse_concat_part(self) -> SequenceTerm:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            base: SequenceTerm = ConstantTerm(token.value)
            base.span = token.span
            part = self._maybe_indexed(base)
        elif token.kind == "EPS":
            self._advance()
            part = ConstantTerm("")
        elif token.kind == "VARIABLE":
            self._advance()
            base = SequenceVariable(token.value)
            base.span = token.span
            part = self._maybe_indexed(base)
        elif token.kind == "AT":
            self._advance()
            name = self._expect("IDENT")
            self._expect("LPAREN")
            args = [self.parse_sequence_term()]
            while self._accept("COMMA"):
                args.append(self.parse_sequence_term())
            self._expect("RPAREN")
            part = TransducerTerm(name.value, args)
        else:
            raise ParseError(
                f"expected a sequence term but found {token.kind} ({token.value!r})",
                token.line,
                token.column,
            )
        part.span = self._span_from(token)
        return part

    def _maybe_indexed(self, base: SequenceTerm) -> SequenceTerm:
        if not self._accept("LBRACKET"):
            return base
        lo = self.parse_index_term()
        hi: Optional[IndexTerm] = None
        if self._accept("COLON"):
            hi = self.parse_index_term()
        self._expect("RBRACKET")
        return IndexedTerm(base, lo, hi)  # type: ignore[arg-type]

    def parse_index_term(self) -> IndexTerm:
        term = self.parse_index_atom()
        while True:
            if self._accept("PLUS"):
                term = IndexSum(term, self.parse_index_atom(), "+")
            elif self._accept("MINUS"):
                term = IndexSum(term, self.parse_index_atom(), "-")
            else:
                return term

    def parse_index_atom(self) -> IndexTerm:
        token = self._peek()
        if token.kind == "INTEGER":
            self._advance()
            return IndexConstant(int(token.value))
        if token.kind == "VARIABLE":
            self._advance()
            return IndexVariable(token.value)
        if token.kind == "END":
            self._advance()
            return End()
        raise ParseError(
            f"expected an index term but found {token.kind} ({token.value!r})",
            token.line,
            token.column,
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def parse_program(text: str) -> Program:
    """Parse a whole program (a sequence of clauses).

    The returned program remembers its source text (``program.source``) so
    diagnostics can render caret-underlined excerpts without re-reading the
    file.
    """
    parser = _Parser(tokenize(text))
    program = parser.parse_program()
    program.source = text
    return program


def parse_clause(text: str) -> Clause:
    """Parse a single clause (must end with a period)."""
    parser = _Parser(tokenize(text))
    clause = parser.parse_clause()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError("trailing input after clause", token.line, token.column)
    return clause


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. for queries: ``answer(X)``."""
    parser = _Parser(tokenize(text))
    atom = parser.parse_atom()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError("trailing input after atom", token.line, token.column)
    return atom


def parse_term(text: str) -> SequenceTerm:
    """Parse a single sequence term, e.g. ``X[2:end] ++ "a"``."""
    parser = _Parser(tokenize(text))
    term = parser.parse_sequence_term()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError("trailing input after term", token.line, token.column)
    return term
