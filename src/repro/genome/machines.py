"""Genome-specific generalized transducers (all order 1).

Example 7.1 of the paper builds a DNA -> RNA -> protein pipeline out of two
base transducers and notes in footnotes 6 and 8 that the biological
complications it elides -- intron splicing, reading frames, stop codons --
"can be encoded in Transducer Datalog without difficulty".  The machines
here provide those encodings:

* :func:`complement_dna_transducer` -- the Watson-Crick complement of a DNA
  strand (a per-symbol map, hence an ordinary transducer);
* :func:`splice_transducer` -- remove introns from a marked pre-mRNA-style
  transcript: everything between a donor mark and the following acceptor
  mark is deleted, everything else is copied.  Being a two-state per-symbol
  machine it is an ordinary (order-1) transducer, which is exactly why the
  paper can claim splicing adds no difficulty;
* :func:`clean_transducer` -- drop any non-alphabet "noise" symbols from a
  read (ambiguity codes collapsed to nothing), used to sanitise synthetic
  workloads.

Reverse complementation needs *reversal*, which no one-way transducer can
do; it is therefore provided as a Sequence Datalog program in
:mod:`repro.genome.programs` (structural recursion plus construction, the
Example 1.4 pattern), not as a machine.
"""

from __future__ import annotations

from typing import Iterable

from repro.sequences.alphabet import DNA_ALPHABET, RNA_ALPHABET
from repro.transducers.builder import TransducerBuilder
from repro.transducers.library import mapping_transducer
from repro.transducers.machine import CONSUME, GeneralizedTransducer

#: Marks the start of an intron in a marked transcript (donor site).
DONOR_MARK = "<"

#: Marks the end of an intron in a marked transcript (acceptor site).
ACCEPTOR_MARK = ">"

#: The Watson-Crick complement map over the DNA alphabet.
DNA_COMPLEMENT = {"a": "t", "t": "a", "c": "g", "g": "c"}


def complement_dna_transducer(name: str = "complement_dna") -> GeneralizedTransducer:
    """The per-symbol Watson-Crick complement of a DNA strand."""
    return mapping_transducer(name, DNA_COMPLEMENT, alphabet=DNA_ALPHABET)


def splice_transducer(
    alphabet: Iterable[str] = RNA_ALPHABET,
    donor: str = DONOR_MARK,
    acceptor: str = ACCEPTOR_MARK,
    name: str = "splice",
) -> GeneralizedTransducer:
    """Remove introns from a transcript with marked splice sites.

    The input alphabet is the base alphabet plus the two marks.  The machine
    has two states: in ``exon`` it copies every base and drops the donor
    mark while switching to ``intron``; in ``intron`` it drops every base
    and drops the acceptor mark while switching back to ``exon``.  Unmatched
    marks are simply dropped (the machine never gets stuck), so the machine
    is total on its alphabet.

    Example: ``aug<ggg>cau`` splices to ``augcau``.
    """
    bases = tuple(dict.fromkeys(alphabet))
    builder = TransducerBuilder(name, num_inputs=1, alphabet=bases + (donor, acceptor))
    for base in bases:
        builder.add("exon", (base,), "exon", (CONSUME,), base)
        builder.add("intron", (base,), "intron", (CONSUME,), "")
    builder.add("exon", (donor,), "intron", (CONSUME,), "")
    builder.add("intron", (acceptor,), "exon", (CONSUME,), "")
    # Tolerate stray marks: an acceptor while in an exon and a donor while
    # already inside an intron are ignored.
    builder.add("exon", (acceptor,), "exon", (CONSUME,), "")
    builder.add("intron", (donor,), "intron", (CONSUME,), "")
    return builder.build(initial_state="exon")


def clean_transducer(
    keep: Iterable[str] = DNA_ALPHABET,
    noise: Iterable[str] = "n-",
    name: str = "clean",
) -> GeneralizedTransducer:
    """Drop noise symbols (ambiguity codes, gaps) and keep everything else."""
    kept = tuple(dict.fromkeys(keep))
    dropped = tuple(dict.fromkeys(noise))
    mapping = {symbol: "" for symbol in dropped}
    return mapping_transducer(name, mapping, alphabet=kept + dropped)
