"""A genome-analysis facade over the query engine (the Example 7.1 pipeline,
grown into the application the paper's introduction describes).

:class:`GenomeAnalyzer` owns a database of DNA strands and exposes the
operations a genome database needs (Section 1): transcription and
translation (Example 7.1, via Transducer Datalog), splicing of marked
transcripts (footnote 6, via an order-1 transducer), reverse complements
(Sequence Datalog construction), open reading frames and reading-frame
codons (footnote 8, structural recursion), and restriction-site search
(pattern matching).  Every method runs a real program or machine from
:mod:`repro.genome.programs` / :mod:`repro.genome.machines`; nothing is
computed by shortcutting to plain Python except the position bookkeeping
that the sequence-only data model cannot express (documented per method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.database.database import SequenceDatabase
from repro.engine.fixpoint import compute_least_fixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.query import evaluate_query
from repro.errors import ValidationError
from repro.genome.machines import (
    complement_dna_transducer,
    splice_transducer,
)
from repro.genome.programs import (
    orf_program,
    reading_frame_program,
    restriction_site_program,
    reverse_complement_program,
)
from repro.sequences import as_sequence
from repro.sequences.alphabet import DNA_ALPHABET
from repro.transducer_datalog.program import TransducerDatalogProgram
from repro.transducers.library import transcribe_transducer, translate_transducer
from repro.transducers.registry import TransducerCatalog

#: Generous limits: genome programs are strongly guarded by the stored
#: strands, but ORF search on many strands derives many intermediate facts.
_GENOME_LIMITS = EvaluationLimits(
    max_iterations=10_000,
    max_facts=2_000_000,
    max_domain_size=2_000_000,
    max_sequence_length=100_000,
)


@dataclass(frozen=True)
class OpenReadingFrame:
    """One open reading frame found in an RNA strand.

    ``start`` and ``stop`` are 1-based positions of the first symbol of the
    start codon and the first symbol of the stop codon; ``sequence`` is the
    spanned subsequence including the stop codon; ``protein`` is its
    translation (stop codon rendered as ``*``).
    """

    strand: str
    start: int
    stop: int
    sequence: str
    protein: str

    @property
    def length(self) -> int:
        return len(self.sequence)


class GenomeAnalyzer:
    """Analyse a database of DNA strands with the paper's query languages."""

    def __init__(self, strands: Iterable[str], limits: EvaluationLimits = _GENOME_LIMITS):
        self.strands: List[str] = [as_sequence(strand).text for strand in strands]
        for strand in self.strands:
            DNA_ALPHABET.validate_word(strand)
        self.limits = limits
        self._transcribe = transcribe_transducer()
        self._translate = translate_transducer()
        self._complement = complement_dna_transducer()
        self._catalog = TransducerCatalog([self._transcribe, self._translate])

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def dna_database(self) -> SequenceDatabase:
        """The ``dnaseq`` relation holding the stored strands."""
        return SequenceDatabase.from_dict({"dnaseq": self.strands})

    def rna_database(self) -> SequenceDatabase:
        """The ``rnaseq`` relation holding the transcribed strands."""
        return SequenceDatabase.from_dict({"rnaseq": list(self.transcripts().values())})

    # ------------------------------------------------------------------
    # Example 7.1: transcription and translation
    # ------------------------------------------------------------------
    def transcripts(self) -> Dict[str, str]:
        """DNA strand -> RNA transcript, via the Example 7.1 program."""
        program = TransducerDatalogProgram(
            'rnaseq(D, @transcribe(D)) :- dnaseq(D).', catalog=self._catalog
        )
        result = program.evaluate(self.dna_database(), limits=self.limits)
        rows = evaluate_query(result.interpretation, "rnaseq(D, R)")
        return {d: r for d, r in rows.texts()}

    def proteins(self) -> Dict[str, str]:
        """DNA strand -> protein, via the full two-rule Example 7.1 program."""
        program = TransducerDatalogProgram(
            """
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            proteinseq(D, @translate(R)) :- rnaseq(D, R).
            """,
            catalog=self._catalog,
        )
        result = program.evaluate(self.dna_database(), limits=self.limits)
        rows = evaluate_query(result.interpretation, "proteinseq(D, P)")
        return {d: p for d, p in rows.texts()}

    # ------------------------------------------------------------------
    # Restructurings
    # ------------------------------------------------------------------
    def reverse_complements(self) -> Dict[str, str]:
        """DNA strand -> reverse complement, via Sequence Datalog."""
        result = compute_least_fixpoint(
            reverse_complement_program(), self.dna_database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "revcomp(X, Y)")
        return {x: y for x, y in rows.texts()}

    def complements(self) -> Dict[str, str]:
        """DNA strand -> Watson-Crick complement (not reversed), via the
        order-1 complement transducer."""
        return {strand: self._complement(strand).text for strand in self.strands}

    def splice(self, marked_transcripts: Iterable[str]) -> List[str]:
        """Remove introns from transcripts with ``<`` ... ``>`` markers.

        Footnote 6: intron splicing "can be encoded in Transducer Datalog
        without difficulty" -- the encoding is the order-1
        :func:`~repro.genome.machines.splice_transducer` invoked through a
        one-rule Transducer Datalog program.
        """
        transcripts = [as_sequence(value).text for value in marked_transcripts]
        machine = splice_transducer()
        program = TransducerDatalogProgram(
            "spliced(X, @splice(X)) :- marked(X).", transducers=[machine]
        )
        database = SequenceDatabase.from_dict({"marked": transcripts})
        result = program.evaluate(database, limits=self.limits)
        rows = dict(evaluate_query(result.interpretation, "spliced(X, Y)").texts())
        return [rows[transcript] for transcript in transcripts]

    # ------------------------------------------------------------------
    # Footnote 8: reading frames, stop codons, ORFs
    # ------------------------------------------------------------------
    def reading_frame(self, frame: int = 1) -> Dict[str, List[str]]:
        """RNA transcript -> its non-overlapping codons in the given frame.

        Relations are sets, so the ``codon`` relation alone loses order and
        duplicates; the in-order codon list is rebuilt from the
        ``frame_suffix`` relation instead (one suffix per codon boundary,
        ordered by decreasing length), which is faithful to what the program
        derived.
        """
        result = compute_least_fixpoint(
            reading_frame_program(frame), self.rna_database(), limits=self.limits
        )
        suffixes = evaluate_query(result.interpretation, "frame_suffix(R, S)")
        by_strand: Dict[str, List[str]] = {}
        for strand, suffix in suffixes.texts():
            by_strand.setdefault(strand, []).append(suffix)
        ordered: Dict[str, List[str]] = {}
        for strand, found in by_strand.items():
            found.sort(key=len, reverse=True)
            ordered[strand] = [suffix[:3] for suffix in found if len(suffix) >= 3]
        return ordered

    def open_reading_frames(
        self, min_codons: int = 2, minimal_only: bool = True
    ) -> List[OpenReadingFrame]:
        """All ORFs of all transcripts, as :class:`OpenReadingFrame` records.

        The Datalog program derives every in-frame (start, stop) span;
        ``minimal_only=True`` keeps, per start codon, only the span ending at
        the *first* in-frame stop codon (the biological ORF), a filter that
        needs negation and is therefore applied here rather than in the
        positive program.  ``min_codons`` drops spans shorter than that many
        codons (including the stop codon).
        """
        if min_codons < 1:
            raise ValidationError("min_codons must be at least 1")
        result = compute_least_fixpoint(
            orf_program(), self.rna_database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "orf(R, O)")
        spans: List[OpenReadingFrame] = []
        for strand, found in rows.texts():
            for start in _occurrences(strand, found):
                stop = start + len(found) - 3
                spans.append(
                    OpenReadingFrame(
                        strand=strand,
                        start=start,
                        stop=stop,
                        sequence=found,
                        protein=self._translate(found).text,
                    )
                )
        spans = [span for span in spans if len(span.sequence) >= 3 * min_codons]
        if minimal_only:
            shortest: Dict[Tuple[str, int], OpenReadingFrame] = {}
            for span in spans:
                key = (span.strand, span.start)
                if key not in shortest or span.length < shortest[key].length:
                    shortest[key] = span
            spans = list(shortest.values())
        return sorted(spans, key=lambda span: (span.strand, span.start, span.stop))

    # ------------------------------------------------------------------
    # Restriction analysis
    # ------------------------------------------------------------------
    def restriction_sites(self, site: str = "gaattc") -> Dict[str, List[int]]:
        """DNA strand -> 1-based positions of every occurrence of ``site``.

        The Datalog query returns the suffix starting at each occurrence
        (relations hold sequences, not integers); positions are recovered as
        ``len(strand) - len(suffix) + 1``.  Repeated occurrences of the same
        suffix text cannot happen (a suffix is determined by its length), so
        the conversion is exact.
        """
        result = compute_least_fixpoint(
            restriction_site_program(site), self.dna_database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "site_at(R, S)")
        positions: Dict[str, List[int]] = {strand: [] for strand in self.strands}
        for strand, suffix in rows.texts():
            positions[strand].append(len(strand) - len(suffix) + 1)
        return {strand: sorted(found) for strand, found in positions.items()}

    def digest(self, site: str = "gaattc", cut_offset: int = 1) -> Dict[str, List[str]]:
        """Cut every strand at every occurrence of ``site``.

        ``cut_offset`` is the 0-based offset within the site at which the
        enzyme cuts (EcoRI cuts between the g and the first a, offset 1).
        Fragment assembly from the cut positions is plain bookkeeping on top
        of the Datalog site query.
        """
        fragments: Dict[str, List[str]] = {}
        for strand, positions in self.restriction_sites(site).items():
            cuts = [position - 1 + cut_offset for position in positions]
            pieces, previous = [], 0
            for cut in cuts:
                pieces.append(strand[previous:cut])
                previous = cut
            pieces.append(strand[previous:])
            fragments[strand] = [piece for piece in pieces if piece]
        return fragments

    # ------------------------------------------------------------------
    # Simple composition statistics (no query machinery needed)
    # ------------------------------------------------------------------
    def gc_content(self) -> Dict[str, float]:
        """DNA strand -> fraction of g/c bases (0.0 for the empty strand)."""
        return {
            strand: (
                (strand.count("g") + strand.count("c")) / len(strand) if strand else 0.0
            )
            for strand in self.strands
        }

    def __repr__(self) -> str:
        total = sum(len(strand) for strand in self.strands)
        return f"GenomeAnalyzer({len(self.strands)} strands, {total} bases)"


def _occurrences(haystack: str, needle: str) -> List[int]:
    """1-based start positions of every occurrence of ``needle``."""
    positions = []
    start = 0
    while True:
        index = haystack.find(needle, start)
        if index < 0:
            return positions
        positions.append(index + 1)
        start = index + 1
