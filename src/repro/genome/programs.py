"""Sequence Datalog programs for genome-database queries.

These programs implement the restructurings and pattern-matching queries the
paper's introduction motivates (Section 1, Example 7.1 and its footnotes) on
top of the core language only -- structural recursion with indexed terms and
constructive terms -- so they double as non-trivial end-to-end exercises of
the engine:

* :func:`reverse_complement_program` -- the reverse complement of every
  stored DNA strand (the Example 1.4 reverse pattern plus a per-symbol
  complement table);
* :func:`orf_program` -- open reading frames: every in-frame (start codon,
  stop codon) span of every stored RNA strand.  Positive Datalog cannot say
  "and no earlier in-frame stop codon" (that needs negation), so the program
  derives all spans and :class:`repro.genome.pipeline.GenomeAnalyzer`
  post-filters to minimal ORFs;
* :func:`reading_frame_program` -- the codons of reading frame 1/2/3 of
  every stored RNA strand;
* :func:`restriction_site_program` -- all occurrences of a fixed recognition
  site (e.g. EcoRI ``gaattc``) in every stored DNA strand.

Because relations in the extended relational model hold *sequences* (never
integers), queries that conceptually return positions return the suffix of
the strand starting at that position instead; the pipeline converts suffixes
back to 1-based positions.  All programs use the relation names ``dnaseq``
(DNA strands) or ``rnaseq`` (RNA strands) so they compose with the
Example 7.1 pipeline.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.language.clauses import Program
from repro.language.parser import parse_program

#: The start codon recognised by :func:`orf_program`.
START_CODON = "aug"

#: The three stop codons of the standard genetic code.
STOP_CODONS = ("uaa", "uag", "uga")


def reverse_complement_program() -> Program:
    """The reverse complement of every strand in ``dnaseq``.

    ``revcomp(X, Y)`` holds when ``Y`` is the reverse complement of the
    stored strand ``X``.  The recursion follows Example 1.4: scan the strand
    left to right while prepending the complement of each base to the
    output, so the output ends up reversed and complemented at once.
    """
    return parse_program(
        """
        revcomp(X, Y) :- dnaseq(X), rc(X, Y).
        rc("", "") :- true.
        rc(X[1:N+1], C ++ Y) :- dnaseq(X), rc(X[1:N], Y), basecomp(X[N+1], C).
        basecomp("a", "t") :- true.
        basecomp("t", "a") :- true.
        basecomp("c", "g") :- true.
        basecomp("g", "c") :- true.
        """
    )


def orf_program() -> Program:
    """All in-frame (start, stop) spans of every strand in ``rnaseq``.

    ``orf(R, O)`` holds when ``O`` is a contiguous subsequence of ``R`` that
    starts with the start codon, ends with a stop codon, and whose length is
    a multiple of three (so the stop codon lies in the reading frame opened
    by the start codon).  The divisibility test is the structural recursion
    ``mult3``: a sequence has length divisible by three exactly when
    chopping three symbols off its front eventually reaches the empty
    sequence.
    """
    stop_facts = "\n".join(f'stopcodon("{codon}") :- true.' for codon in STOP_CODONS)
    return parse_program(
        f"""
        orf(R, R[N:M+2]) :- rnaseq(R), R[N:N+2] = "{START_CODON}",
                            stopcodon(R[M:M+2]), mult3(R[N:M-1]).
        mult3("") :- true.
        mult3(X) :- mult3(X[4:end]).
        {stop_facts}
        """
    )


def reading_frame_program(frame: int = 1) -> Program:
    """The codons of reading frame ``frame`` (1, 2 or 3) of every RNA strand.

    ``codon(R, C)`` holds when ``C`` is one of the non-overlapping codons of
    strand ``R`` read from offset ``frame``.  ``frame_suffix(R, S)`` holds
    when ``S`` is a suffix of ``R`` starting at a codon boundary of that
    frame; each recursion step chops one complete codon off the front.
    """
    if frame not in (1, 2, 3):
        raise ValidationError(f"reading frame must be 1, 2 or 3, got {frame}")
    return parse_program(
        f"""
        codon(R, S[1:3]) :- frame_suffix(R, S), S[3] = S[3].
        frame_suffix(R, R[{frame}:end]) :- rnaseq(R).
        frame_suffix(R, S[4:end]) :- frame_suffix(R, S), S[3] = S[3].
        """
    )


def restriction_site_program(site: str = "gaattc") -> Program:
    """All occurrences of the recognition ``site`` in every DNA strand.

    ``site_at(R, S)`` holds when ``S`` is the suffix of strand ``R`` whose
    first ``len(site)`` symbols are the recognition site; the 1-based
    position of the occurrence is ``len(R) - len(S) + 1`` (computed by the
    pipeline).  This is the simplest kind of pattern-matching query the
    paper's introduction mentions: a single non-recursive rule with indexed
    terms.
    """
    if not site:
        raise ValidationError("the recognition site must be non-empty")
    return parse_program(
        f"""
        site_at(R, R[N:end]) :- dnaseq(R), R[N:N+{len(site) - 1}] = "{site}".
        """
    )


def transcription_program() -> Program:
    """DNA -> RNA transcription as plain Sequence Datalog (Example 7.2).

    Re-exported here so genome code has a single import point; the program
    text is the paper's Example 7.2.
    """
    from repro.core import paper_programs

    return paper_programs.transcribe_simulation_program()
