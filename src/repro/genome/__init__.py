"""Genome-database application layer built on the public query API.

Genome databases are the paper's motivating application (Section 1,
Example 7.1): long sequences over the DNA alphabet that need pattern
matching *and* restructuring -- transcription, translation, splicing,
reverse complements, and operations "that cannot be anticipated in advance".
This package builds those operations on top of Sequence Datalog, Transducer
Datalog and the generalized-transducer library, exactly the way a downstream
genome application would:

* :mod:`~repro.genome.machines` -- additional base transducers for genome
  work: DNA complementation, intron splicing over marked transcripts, and
  sequence cleaning (footnote 6 of the paper notes splicing "can be encoded
  in Transducer Datalog without difficulty"; this is that encoding).
* :mod:`~repro.genome.programs` -- Sequence Datalog / Transducer Datalog
  programs for reverse complements, open reading frames (ORFs), reading
  frames, and restriction-site search (footnote 8's reading frames and stop
  codons made explicit).
* :mod:`~repro.genome.pipeline` -- :class:`~repro.genome.pipeline.GenomeAnalyzer`,
  a facade bundling the programs and machines over a DNA sequence database.
"""

from repro.genome.machines import (
    complement_dna_transducer,
    splice_transducer,
    DONOR_MARK,
    ACCEPTOR_MARK,
)
from repro.genome.pipeline import GenomeAnalyzer, OpenReadingFrame
from repro.genome.programs import (
    START_CODON,
    STOP_CODONS,
    orf_program,
    reading_frame_program,
    restriction_site_program,
    reverse_complement_program,
)

__all__ = [
    "ACCEPTOR_MARK",
    "DONOR_MARK",
    "GenomeAnalyzer",
    "OpenReadingFrame",
    "START_CODON",
    "STOP_CODONS",
    "complement_dna_transducer",
    "orf_program",
    "reading_frame_program",
    "restriction_site_program",
    "reverse_complement_program",
    "splice_transducer",
]
