"""Asyncio TCP front-end for the versioned API.

:class:`AsyncDatalogServer` serves the same length-prefixed newline-JSON
v1 frames as :class:`~repro.api.transport.DatalogTCPServer`, against the
same shared :class:`~repro.engine.server.DatalogServer` backend — but
holds every connection as asyncio state instead of a dedicated thread.
The threaded transport costs one thread (~8 MiB of stack address space
plus scheduler load) per connection whether or not it is doing anything;
here tens of thousands of idle connections or watch streams cost a few
kilobytes each, on a handful of threads total:

* the event-loop thread owns every socket — reads, writes, timeouts,
  heartbeats;
* a small :class:`~concurrent.futures.ThreadPoolExecutor` runs the
  blocking engine work (:meth:`DatalogService.handle_raw`) so a heavy
  query never stalls the loop — per-connection request/response lockstep
  is preserved by awaiting each dispatch before reading the next frame;
* replication streams (the blocking generator
  :meth:`~repro.api.service.DatalogService.stream_subscription`) each get
  a dedicated thread, bridged back into the connection's outbound queue.

Unlike the threaded transport — where ``watch``/``subscribe`` flip the
whole connection to server-push — this front-end is **duplex**: one
connection can hold many live-query watches *and* keep issuing ordinary
requests.  Each watch gets a pump task that bridges the subscription's
queue into the connection's bounded outbound queue; ``await drain()`` on
the socket is the backpressure chain that ultimately trips the
subscription manager's coalesce/slow-consumer policy when a reader
stalls.

``serve_tcp_async`` mirrors :func:`~repro.api.transport.serve_tcp`: same
arguments, same ``.address`` / context-manager / ``serve_forever`` shape,
so callers (CLI, tests, benchmarks) swap transports with one flag.

This module must not import :mod:`repro.api.transport` (the threaded
transport imports this package's subscription manager).
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple, Union

from repro.api.protocol import MAX_FRAME_BYTES
from repro.api.service import DEFAULT_MAX_PAGE_ROWS, DatalogService
from repro.api.types import (
    ApiError,
    ErrorCode,
    HeartbeatFrame,
    SubscribeRequest,
    UnwatchedResponse,
    UnwatchRequest,
    WatchingResponse,
    WatchRequest,
    decode_request,
    encode_response,
)
from repro.engine.server import DatalogServer
from repro.errors import ProtocolError
from repro.live.aframing import encode_frame, read_message
from repro.live.subscriptions import Subscription, SubscriptionManager
from repro.replication.hub import DEFAULT_HEARTBEAT_SECONDS, ReplicationHub

#: Frames buffered per connection between the dispatching side and the
#: socket writer.  Small on purpose: once it fills, producers (request
#: replies, watch pumps) await, and watch backpressure moves into the
#: subscription manager's coalescing queue where the slow-consumer
#: policy lives.
OUTBOUND_QUEUE_FRAMES = 32

#: Threads for blocking engine work.  The backend serializes writers and
#: snapshots reads, so a handful is enough to keep queries flowing
#: without turning back into thread-per-connection.
DEFAULT_EXECUTOR_THREADS = 4

#: Writer-task sentinel: flush what is queued, then close the connection
#: (the slow-consumer disconnect ships its terminal error first).
_CLOSE = object()


class _Connection:
    """Asyncio-side state for one client connection."""

    __slots__ = (
        "reader", "writer", "outbound", "service", "watches",
        "writer_task", "dead",
    )

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        service: DatalogService,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.outbound: asyncio.Queue = asyncio.Queue(maxsize=OUTBOUND_QUEUE_FRAMES)
        self.service = service
        #: subscription id -> (subscription, pump task)
        self.watches: Dict[str, Tuple[Subscription, asyncio.Task]] = {}
        self.writer_task: Optional[asyncio.Task] = None
        #: Set at teardown; unblocks replication-stream threads parked on
        #: the outbound queue.
        self.dead = threading.Event()


class AsyncDatalogServer:
    """Serve one :class:`DatalogServer` backend over asyncio TCP.

    Parameters mirror :class:`~repro.api.transport.DatalogTCPServer`
    (``address``, ``backend``, ``max_page_rows``, ``max_frame_bytes``,
    ``owns_backend``, ``heartbeat_seconds``) plus ``executor_threads``,
    the size of the shared pool blocking engine work runs on.

    The listening socket is bound in the constructor — ``.address``
    resolves port 0 immediately, before :meth:`start` — and the event
    loop runs on a dedicated daemon thread, so the blocking entry points
    (:meth:`start`, :meth:`serve_forever`, :meth:`close`, the context
    manager) look exactly like the threaded transport's.

    Like the threaded transport, every asyncio-served backend is
    automatically a replication leader (a
    :class:`~repro.replication.hub.ReplicationHub` is attached at
    construction) and carries a
    :class:`~repro.live.subscriptions.SubscriptionManager` for ``watch``
    streams.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        backend: DatalogServer,
        max_page_rows: int = DEFAULT_MAX_PAGE_ROWS,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        owns_backend: bool = False,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        executor_threads: int = DEFAULT_EXECUTOR_THREADS,
    ) -> None:
        self.backend = backend
        self.max_page_rows = max_page_rows
        self.max_frame_bytes = max_frame_bytes
        self._owns_backend = owns_backend
        self.hub = (
            ReplicationHub(backend, heartbeat_seconds=heartbeat_seconds)
            if isinstance(backend, DatalogServer)
            else None
        )
        self.live = (
            SubscriptionManager(backend, heartbeat_seconds=heartbeat_seconds)
            if isinstance(backend, DatalogServer)
            else None
        )
        # Bind now so `.address` answers (and port 0 resolves) before the
        # loop thread exists — same contract as the threaded transport.
        self._socket = socket.create_server(address, backlog=512)
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_threads), thread_name_prefix="repro-aio"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections: Set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle (blocking surface, thread-safe)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        host, port = self._socket.getsockname()[:2]
        return host, port

    def start(self) -> AsyncDatalogServer:
        """Run the event loop on a daemon thread and begin accepting."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-api-aio", daemon=True
            )
            self._thread.start()
            self._started.wait()
            if self._startup_error is not None:
                raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (interruptible by KeyboardInterrupt).

        Polls a half-second tick instead of joining the loop thread so
        the CLI's signal translation (SIGTERM -> KeyboardInterrupt) can
        interrupt it — the same graceful-shutdown story the threaded
        transport's ``serve_forever`` has.
        """
        self.start()
        while not self._stopped.wait(0.5):
            pass

    def close(self) -> None:
        """Stop accepting, unwind every connection, release everything."""
        if self._closed:
            return
        self._closed = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self.live is not None:
            self.live.close()
        try:
            self._socket.close()  # idempotent; the loop normally owns it
        except OSError:
            pass
        self._executor.shutdown(wait=False)
        if self._owns_backend:
            self.backend.close()
        self._stopped.set()

    def __enter__(self) -> AsyncDatalogServer:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return f"AsyncDatalogServer({host}:{port}, backend={self.backend!r})"

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failure
            self._startup_error = error
            self._started.set()
        finally:
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._on_connection, sock=self._socket, backlog=512
        )
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------
    # Per-connection protocol loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Frames are small and latency-bound: Nagle + delayed ACK
                # would add ~40ms per round trip on loopback.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - exotic socket types
                pass
        service = DatalogService(
            self.backend, max_page_rows=self.max_page_rows, hub=self.hub,
            live=self.live,
        )
        connection = _Connection(reader, writer, service)
        connection.writer_task = asyncio.ensure_future(
            self._write_loop(connection)
        )
        if self.live is not None:
            self.live.connection_opened()
        try:
            await self._serve(connection)
        except asyncio.CancelledError:
            pass  # server shutdown unwinds the connection below
        finally:
            connection.dead.set()
            for subscription, pump in connection.watches.values():
                if self.live is not None:
                    self.live.unsubscribe(subscription.id)
                pump.cancel()
            connection.watches.clear()
            writer_task = connection.writer_task
            if writer_task is not None and not writer_task.done():
                # Flush what is already queued (a best-effort protocol
                # error, a terminal watch frame) before dropping the
                # socket; fall back to cancellation if the peer stalls.
                try:
                    connection.outbound.put_nowait(_CLOSE)
                    await asyncio.wait_for(asyncio.shield(writer_task), 5)
                except BaseException:
                    writer_task.cancel()
            if self.live is not None:
                self.live.connection_closed()
            service.close()

    async def _serve(self, connection: _Connection) -> None:
        while True:
            try:
                message = await read_message(
                    connection.reader, self.max_frame_bytes
                )
            except ProtocolError as error:
                # One best-effort typed reply, then drop: the stream
                # position is unknown after a framing violation.
                await self._send(
                    connection, encode_response(ApiError.from_exception(error))
                )
                return
            except (OSError, ConnectionError):
                return
            if message is None:
                return  # clean EOF
            op = message.get("op")
            if op == "watch":
                await self._handle_watch(connection, message)
                continue
            if op == "unwatch":
                await self._handle_unwatch(connection, message)
                continue
            if op == "subscribe":
                # A replication stream joins the duplex connection: the
                # blocking generator runs on its own thread and funnels
                # frames into this connection's outbound queue.
                self._start_replication(connection, message)
                continue
            # Ordinary request/response: run the blocking dispatch on the
            # executor and await it before reading the next frame — the
            # per-connection lockstep is the pagination backpressure.
            assert self._loop is not None
            reply = await self._loop.run_in_executor(
                self._executor, connection.service.handle_raw, message
            )
            await self._send(connection, reply)

    async def _send(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> None:
        """Encode and enqueue one reply, degrading oversized frames.

        A reply that blows the frame cap (a page of huge sequences: the
        row clamp bounds rows, not bytes) is replaced by a small typed
        error — after releasing any cursors it registered, which the
        client would otherwise never learn about.
        """
        try:
            data = encode_frame(message, self.max_frame_bytes)
        except ProtocolError as error:
            self._drop_reply_cursors(connection.service, message)
            data = encode_frame(
                encode_response(ApiError.from_exception(error)),
                self.max_frame_bytes,
            )
        await connection.outbound.put(data)

    @staticmethod
    def _drop_reply_cursors(
        service: DatalogService, message: Dict[str, Any]
    ) -> None:
        cursors = [message.get("cursor")]
        cursors.extend(
            entry.get("cursor")
            for entry in message.get("results", ())
            if isinstance(entry, dict)
        )
        for cursor in cursors:
            if isinstance(cursor, str):
                service.release_cursor(cursor)

    async def _write_loop(self, connection: _Connection) -> None:
        """The only writer of this connection's socket.

        ``await drain()`` per frame is the real backpressure: when the
        kernel buffer fills, this task parks, the bounded outbound queue
        fills behind it, producers await, and watch deltas pile into the
        subscription manager's coalescing queue where the slow-consumer
        policy decides.
        """
        writer = connection.writer
        try:
            while True:
                data = await connection.outbound.get()
                if data is _CLOSE:
                    return
                writer.write(data)
                await writer.drain()
        except (OSError, ConnectionError):
            return  # peer went away mid-write; the reader will notice
        finally:
            connection.dead.set()
            try:
                writer.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Live queries (duplex watch/unwatch)
    # ------------------------------------------------------------------
    async def _handle_watch(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> None:
        live = self.live
        try:
            request = decode_request(message)
        except Exception as error:
            await self._send(
                connection, encode_response(ApiError.from_exception(error))
            )
            return
        if live is None or not isinstance(request, WatchRequest):
            await self._send(
                connection,
                encode_response(
                    ApiError(
                        code=ErrorCode.BAD_REQUEST,
                        message="live queries are not enabled on this server",
                    )
                ),
            )
            return
        assert self._loop is not None
        try:
            subscription = await self._loop.run_in_executor(
                self._executor,
                lambda: live.subscribe(
                    request.pattern, strict=request.strict, initial=request.initial
                ),
            )
        except Exception as error:
            # Parse/validation/unknown-predicate refusals, typed.
            await self._send(
                connection, encode_response(ApiError.from_exception(error))
            )
            return
        # The ack goes into the same FIFO queue before the pump starts,
        # so the client always sees `watching` before any delta.
        await self._send(
            connection,
            encode_response(
                WatchingResponse(
                    subscription=subscription.id,
                    pattern=subscription.pattern,
                    generation=subscription.started_generation,
                    heartbeat_seconds=live.heartbeat_seconds,
                )
            ),
        )
        event = asyncio.Event()
        loop = self._loop

        def _notify() -> None:
            # Fired from the dispatcher thread; the loop may already be
            # gone during shutdown.
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass

        subscription.set_notifier(_notify)
        pump = asyncio.ensure_future(
            self._pump_watch(connection, subscription, event)
        )
        connection.watches[subscription.id] = (subscription, pump)

    async def _handle_unwatch(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> None:
        try:
            request = decode_request(message)
        except Exception as error:
            await self._send(
                connection, encode_response(ApiError.from_exception(error))
            )
            return
        assert isinstance(request, UnwatchRequest)
        entry = connection.watches.pop(request.subscription, None)
        if entry is None:
            await self._send(
                connection,
                encode_response(
                    ApiError(
                        code=ErrorCode.BAD_REQUEST,
                        message=(
                            f"unknown subscription {request.subscription!r} "
                            "(not active on this connection)"
                        ),
                        details={"subscription": request.subscription},
                    )
                ),
            )
            return
        subscription, pump = entry
        if self.live is not None:
            self.live.unsubscribe(subscription.id)
        pump.cancel()
        await self._send(
            connection,
            encode_response(UnwatchedResponse(subscription=subscription.id)),
        )

    async def _pump_watch(
        self,
        connection: _Connection,
        subscription: Subscription,
        event: asyncio.Event,
    ) -> None:
        """Bridge one subscription's queue onto the connection.

        Parked on an :class:`asyncio.Event` the manager's dispatcher
        pokes via ``call_soon_threadsafe`` — an idle watch costs no
        thread and no polling, just a heartbeat frame per cadence tick.
        """
        heartbeat = (
            self.live.heartbeat_seconds if self.live is not None else 1.0
        )
        try:
            while True:
                try:
                    await asyncio.wait_for(event.wait(), heartbeat)
                except asyncio.TimeoutError:
                    if subscription.closed:
                        return
                    await self._send(
                        connection,
                        encode_response(
                            HeartbeatFrame(
                                generation=self.backend.generation,
                                subscription=subscription.id,
                            )
                        ),
                    )
                    continue
                event.clear()
                frames = subscription.pop_all()
                for frame in frames:
                    if isinstance(frame, ApiError):
                        # Terminal (slow consumer): ship the typed error,
                        # then flush and drop the whole connection — the
                        # stream's delta contract is broken.
                        await self._send(connection, encode_response(frame))
                        connection.watches.pop(subscription.id, None)
                        await connection.outbound.put(_CLOSE)
                        return
                    await self._send(connection, encode_response(frame))
                if subscription.closed and not frames:
                    return  # server shutdown / unsubscribed
        except asyncio.CancelledError:
            raise
        except (OSError, ConnectionError):  # pragma: no cover - writer races
            return

    # ------------------------------------------------------------------
    # Replication streams (bridged threads)
    # ------------------------------------------------------------------
    def _start_replication(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> None:
        thread = threading.Thread(
            target=self._stream_replication,
            args=(connection, message),
            name="repro-aio-repl",
            daemon=True,
        )
        thread.start()

    def _stream_replication(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> None:
        """Drive one blocking replication generator onto the connection.

        Runs on a dedicated thread (one per replication subscriber —
        followers are few, unlike watch subscribers).  Each frame is
        handed to the event loop and *waited for*, so the hub's stream
        sees the same per-frame backpressure the threaded transport's
        blocking writes provide.
        """
        service = connection.service
        try:
            request = decode_request(message)
        except Exception as error:
            self._enqueue_threadsafe(
                connection, encode_response(ApiError.from_exception(error))
            )
            return
        assert isinstance(request, SubscribeRequest)
        stream = service.stream_subscription(request)
        try:
            for response in stream:
                if not self._enqueue_threadsafe(
                    connection, encode_response(response)
                ):
                    return  # connection died; stop streaming
        except Exception as error:
            # A pre-stream refusal (no hub, fingerprint mismatch) or a
            # bug mid-stream: ship the typed error so the follower reacts.
            self._enqueue_threadsafe(
                connection, encode_response(ApiError.from_exception(error))
            )
        finally:
            stream.close()

    def _enqueue_threadsafe(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> bool:
        """Queue one frame from a non-loop thread; False once the
        connection is gone (so streaming threads stop promptly)."""
        loop = self._loop
        if loop is None or connection.dead.is_set():
            return False
        try:
            data = encode_frame(message, self.max_frame_bytes)
        except ProtocolError:  # pragma: no cover - replication frames are small
            return False
        try:
            future = asyncio.run_coroutine_threadsafe(
                connection.outbound.put(data), loop
            )
        except RuntimeError:  # loop already closed
            return False
        while True:
            try:
                future.result(timeout=0.5)
                return True
            except TimeoutError:
                if connection.dead.is_set() or not loop.is_running():
                    future.cancel()
                    return False
            except Exception:
                return False


def serve_tcp_async(
    program: Union[str, DatalogServer, object],
    database: Optional[Union[Mapping[str, Iterable], object]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    start: bool = True,
    max_page_rows: int = DEFAULT_MAX_PAGE_ROWS,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    executor_threads: int = DEFAULT_EXECUTOR_THREADS,
    **server_options: Any,
) -> AsyncDatalogServer:
    """Expose a program (or an existing server) over asyncio TCP.

    The drop-in sibling of :func:`~repro.api.transport.serve_tcp`: same
    arguments, same backend-building rules, same ownership semantics —
    only the transport differs (event loop instead of thread-per-
    connection, duplex watches instead of push-only).
    """
    if isinstance(program, DatalogServer):
        if database is not None or server_options:
            raise ProtocolError(
                "serve_tcp_async(server) uses the server as configured; pass "
                "database/server options only with a program"
            )
        backend, owns = program, False
    else:
        backend, owns = DatalogServer(program, database, **server_options), True
    try:
        transport = AsyncDatalogServer(
            (host, port), backend, max_page_rows=max_page_rows,
            max_frame_bytes=max_frame_bytes, owns_backend=owns,
            executor_threads=executor_threads,
        )
    except BaseException:
        if owns:
            backend.close()
        raise
    if start:
        transport.start()
    return transport
