"""Live queries: continuous-query subscriptions and the asyncio front-end.

The engine answers point-in-time queries against published snapshots;
this package turns it into a continuous-query system:

* :mod:`repro.live.subscriptions` — a :class:`SubscriptionManager` that
  rides the same publish-listener hook replication uses and evaluates
  per-subscription result *deltas* against each generation's changed
  facts, with bounded per-subscriber queues and an explicit
  slow-consumer policy (coalesce to the latest generation, then
  disconnect with a typed error).
* :mod:`repro.live.aserver` — an asyncio TCP front-end speaking the
  same length-prefixed newline-JSON v1 frames as the threaded server,
  built to hold tens of thousands of idle connections on a handful of
  threads, fully duplex (many watches plus ordinary requests on one
  connection).
* :mod:`repro.live.aclient` — an :class:`AsyncDatalogClient` for
  asyncio applications, with an ``async for`` watch iterator.

The sync entry points are :func:`repro.live.aserver.serve_tcp_async`
and :meth:`repro.api.client.DatalogClient.watch`.
"""

from repro.live.aclient import AsyncDatalogClient
from repro.live.aserver import AsyncDatalogServer, serve_tcp_async
from repro.live.subscriptions import (
    DEFAULT_MAX_PENDING_ROWS,
    DEFAULT_MAX_QUEUE_FRAMES,
    Subscription,
    SubscriptionManager,
)

__all__ = [
    "AsyncDatalogClient",
    "AsyncDatalogServer",
    "DEFAULT_MAX_PENDING_ROWS",
    "DEFAULT_MAX_QUEUE_FRAMES",
    "Subscription",
    "SubscriptionManager",
    "serve_tcp_async",
]
