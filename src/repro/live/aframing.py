"""Asyncio-side helpers for the length-prefixed newline-JSON framing.

The byte format is exactly :mod:`repro.api.protocol` — these helpers only
adapt it to :class:`asyncio.StreamReader` / pre-encoded outbound bytes so
the asyncio server and client never block a thread on I/O.  Violations
raise the same :class:`~repro.errors.ProtocolError` the blocking codec
raises, with the same "connection is unusable afterwards" contract.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.api.protocol import MAX_FRAME_BYTES
from repro.errors import ProtocolError

#: The length line is ASCII decimal digits; 20 digits already exceeds 2**63.
_MAX_LENGTH_DIGITS = 20


def encode_frame(
    message: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """One wire object as one complete frame (length line + payload + LF).

    The cap is checked before anything is written, so a refused frame
    leaves the stream in sync — the caller can still send a (smaller)
    error frame on the same connection.
    """
    payload = json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(cap {max_bytes}); paginate the result instead"
        )
    return b"%d\n%s\n" % (len(payload), payload)


async def read_message(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read and decode one frame; ``None`` on a clean EOF between frames."""
    try:
        header = await reader.readline()
    except ValueError:
        # The reader's line limit tripped: a length line is at most a few
        # dozen bytes, so the peer is not speaking the protocol.
        raise ProtocolError(
            "frame length line too long or truncated"
        ) from None
    if not header:
        return None  # clean EOF: the peer closed between frames
    if not header.endswith(b"\n"):
        raise ProtocolError(
            f"frame length line too long or truncated: {header[:32]!r}"
        )
    line = header.strip()
    if not line.isdigit() or len(line) > _MAX_LENGTH_DIGITS:
        raise ProtocolError(f"frame length must be decimal digits, got {line!r}")
    length = int(line)
    if length > max_bytes:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {max_bytes})"
        )
    try:
        payload = await reader.readexactly(length + 1)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)}"
            f" of {length} bytes)"
        ) from None
    if payload[-1:] != b"\n":
        raise ProtocolError(
            f"frame not newline-terminated (got {payload[-1:]!r} after payload)"
        )
    try:
        message = json.loads(payload[:-1].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message
