"""Continuous-query subscriptions over the server's publish stream.

A :class:`SubscriptionManager` registers prepared query patterns and, on
every generation a :class:`~repro.engine.server.DatalogServer` publishes
(riding the same publish-listener hook :class:`~repro.replication.hub.ReplicationHub`
uses), evaluates per-subscription result **deltas** and hands typed
:class:`~repro.api.types.SubscriptionDelta` frames to whatever transport
is pumping the subscriber.

Delta evaluation is where the economics live.  The listener — fired under
the writer lock, with the session quiescent — records, per predicate, the
append-only window of rows the generation added (relations only ever
grow).  The dispatcher thread then runs each subscription's compiled plan
against a view exposing *only those windows*: for plans that match rows
structurally this yields exactly the newly-matching rows, at cost
proportional to the change, not the model.  Plans the planner marks
:attr:`~repro.engine.planner.ClausePlan.domain_sensitive` (their matching
observes the ambient domain, so an unchanged relation can gain answers)
fall back to a full query on the new snapshot — served from the server's
per-generation result cache — diffed against a per-subscription seen-set.
Either way the contract is the same: the union of all deltas delivered on
a subscription equals a from-scratch query of the current model, fact for
fact.

Backpressure is explicit.  Each subscription owns a bounded frame queue;
when the transport cannot drain it, new generations are *coalesced* into
the newest queued frame (rows are disjoint across generations, so the
union stays exact and the frame takes the latest generation number).
When even the coalesced backlog exceeds the row bound, the subscription
is terminated with the stable code
:data:`~repro.api.types.ErrorCode.SLOW_CONSUMER` rather than letting one
stalled reader hold memory for everyone else.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from repro.api.types import ApiError, ErrorCode, SubscriptionDelta
from repro.database.relation import RelationDelta
from repro.engine.query import PreparedQuery, canonical_pattern
from repro.engine.server import DatalogServer, ModelSnapshot
from repro.errors import ReproError

#: Per-subscription bound on queued delta frames before coalescing starts.
DEFAULT_MAX_QUEUE_FRAMES = 32

#: Per-subscription bound on queued rows; past it the subscriber is
#: disconnected with :data:`~repro.api.types.ErrorCode.SLOW_CONSUMER`.
DEFAULT_MAX_PENDING_ROWS = 100_000

#: Idle-stream keep-alive cadence (seconds) transports should use.
DEFAULT_HEARTBEAT_SECONDS = 1.0

WireRow = Tuple[str, ...]


class _PendingGeneration:
    """One published generation queued for delta evaluation.

    ``changed`` maps predicate -> ``(relation, start, stop)``: the
    append-only window of rows this generation added.  ``snapshot`` pins
    the published model the windows belong to (and supplies the domain
    delta evaluation must observe).
    """

    __slots__ = ("generation", "snapshot", "changed")

    def __init__(
        self,
        generation: int,
        snapshot: ModelSnapshot,
        changed: Dict[str, Tuple[Any, int, int]],
    ):
        self.generation = generation
        self.snapshot = snapshot
        self.changed = changed


class _DeltaView:
    """The read surface a prepared plan needs, windowed to one generation.

    ``relation()`` answers only for predicates the generation changed —
    and then only with the appended window — so a plan run against this
    view matches exactly the rows the generation added.  The domain is
    the *new* snapshot's: sequences introduced by the change are visible.
    """

    __slots__ = ("_pending",)

    def __init__(self, pending: _PendingGeneration):
        self._pending = pending

    def relation(self, predicate: str) -> Optional[RelationDelta]:
        entry = self._pending.changed.get(predicate)
        if entry is None:
            return None
        relation, start, stop = entry
        return RelationDelta(relation, start, stop)

    @property
    def domain(self):
        return self._pending.snapshot.domain


def _wire_rows(rows) -> Tuple[WireRow, ...]:
    return tuple(tuple(value.text for value in row) for row in rows)


class Subscription:
    """One registered continuous query and its bounded outbound queue.

    Created by :meth:`SubscriptionManager.subscribe`; transports consume
    frames with :meth:`pop` (blocking, for the threaded server) or
    :meth:`pop_all` plus :meth:`set_notifier` (for the asyncio pump).  A
    popped frame is either a :class:`~repro.api.types.SubscriptionDelta`
    or a terminal :class:`~repro.api.types.ApiError`; ``None`` from
    :meth:`pop` means the timeout elapsed (send a heartbeat) unless
    :attr:`closed` went true (stop pumping).
    """

    def __init__(
        self,
        manager: SubscriptionManager,
        subscription_id: str,
        pattern: str,
        prepared: PreparedQuery,
        max_queue_frames: int,
        max_pending_rows: int,
    ):
        self._manager = manager
        self.id = subscription_id
        self.pattern = pattern
        self.prepared = prepared
        #: Domain-sensitive plans cannot be answered from change windows
        #: alone; they re-run the full query per generation and diff.
        self.full_diff = prepared.plan.domain_sensitive
        self.started_generation = -1
        self._max_queue_frames = max(1, max_queue_frames)
        self._max_pending_rows = max(1, max_pending_rows)
        self._lock = threading.Lock()
        self._frames: Deque[Union[SubscriptionDelta, ApiError]] = deque()
        self._event = threading.Event()
        self._notifier: Optional[Callable[[], None]] = None
        self._ready = False
        self._staged: List[_PendingGeneration] = []
        self._seen: Optional[Set[WireRow]] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    # -- transport side ------------------------------------------------
    def set_notifier(self, notifier: Optional[Callable[[], None]]) -> None:
        """Register a callback fired (from the pushing thread) whenever a
        frame becomes available or the subscription closes — the asyncio
        bridge hangs a ``loop.call_soon_threadsafe`` here."""
        with self._lock:
            self._notifier = notifier
            pending = bool(self._frames) or self._closed
        if pending and notifier is not None:
            notifier()

    def pop(self, timeout: float) -> Optional[Union[SubscriptionDelta, ApiError]]:
        """Blocking fetch of the next frame; ``None`` after ``timeout``."""
        if not self._event.wait(timeout):
            return None
        with self._lock:
            if self._frames:
                frame = self._frames.popleft()
            else:
                frame = None
            if not self._frames and not self._closed:
                self._event.clear()
            return frame

    def pop_all(self) -> List[Union[SubscriptionDelta, ApiError]]:
        """Drain every queued frame without blocking."""
        with self._lock:
            frames = list(self._frames)
            self._frames.clear()
            if not self._closed:
                self._event.clear()
            return frames

    # -- manager side --------------------------------------------------
    def _signal_locked(self) -> Optional[Callable[[], None]]:
        self._event.set()
        return self._notifier

    def offer(self, pending: _PendingGeneration) -> None:
        """Feed one published generation to this subscription (dispatcher
        thread).  Stages it while the subscription is still anchoring its
        initial result set; afterwards evaluates and enqueues the delta."""
        notifier = None
        with self._lock:
            if self._closed:
                return
            if not self._ready:
                self._staged.append(pending)
                return
            notifier = self._offer_locked(pending)
        if notifier is not None:
            notifier()

    def _offer_locked(self, pending: _PendingGeneration) -> Optional[Callable[[], None]]:
        # Generations at or below the anchor are covered by the initial
        # result set — delivering them again would duplicate rows.
        if pending.generation <= self.started_generation:
            return None
        rows = self._manager._rows_for(self, pending)
        if not rows:
            return None
        return self._enqueue_locked(pending.generation, rows)

    def activate(
        self,
        started_generation: int,
        initial_rows: Optional[Tuple[WireRow, ...]],
        seen: Optional[Set[WireRow]],
    ) -> None:
        """Anchor the subscription: enqueue the initial frame (when asked
        for), replay staged generations past the anchor, go live."""
        notifiers: List[Callable[[], None]] = []
        with self._lock:
            self.started_generation = started_generation
            self._seen = seen
            if initial_rows is not None:
                self._frames.append(
                    SubscriptionDelta(
                        subscription=self.id,
                        generation=started_generation,
                        rows=initial_rows,
                        initial=True,
                    )
                )
                self._manager._count("deltas_pushed", 1)
                self._manager._count("rows_pushed", len(initial_rows))
                notifiers.append(self._signal_locked())
            staged, self._staged = self._staged, []
            self._ready = True
            for pending in staged:
                notifiers.append(self._offer_locked(pending))
                if self._closed:
                    break
        for notifier in notifiers:
            if notifier is not None:
                notifier()

    def _enqueue_locked(
        self, generation: int, rows: Tuple[WireRow, ...]
    ) -> Optional[Callable[[], None]]:
        manager = self._manager
        if len(self._frames) >= self._max_queue_frames and self._frames:
            newest = self._frames[-1]
            if isinstance(newest, SubscriptionDelta):
                # Coalesce: rows are disjoint across generations, so the
                # union is exact and the frame takes the newest generation.
                self._frames[-1] = SubscriptionDelta(
                    subscription=self.id,
                    generation=max(newest.generation, generation),
                    rows=newest.rows + rows,
                    initial=newest.initial,
                    coalesced=newest.coalesced + 1,
                )
                manager._count("coalesced_generations", 1)
                manager._count("rows_pushed", len(rows))
        else:
            self._frames.append(
                SubscriptionDelta(
                    subscription=self.id, generation=generation, rows=rows
                )
            )
            manager._count("deltas_pushed", 1)
            manager._count("rows_pushed", len(rows))
        pending_rows = sum(
            len(frame.rows)
            for frame in self._frames
            if isinstance(frame, SubscriptionDelta)
        )
        if pending_rows > self._max_pending_rows:
            self._frames.clear()
            self._frames.append(
                ApiError(
                    code=ErrorCode.SLOW_CONSUMER,
                    message=(
                        f"subscription {self.id} fell behind: more than "
                        f"{self._max_pending_rows} undelivered rows queued "
                        "after coalescing; re-subscribe for a fresh "
                        "initial result set"
                    ),
                    details={"subscription": self.id},
                )
            )
            self._closed = True
            manager._count("slow_consumer_disconnects", 1)
            manager._discard(self.id)
        return self._signal_locked()

    def close(self) -> None:
        """Mark the subscription dead and wake any pumping transport."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            notifier = self._signal_locked()
        if notifier is not None:
            notifier()


class SubscriptionManager:
    """Evaluates and fans out per-subscription deltas for one server.

    One manager serves every transport in front of a
    :class:`~repro.engine.server.DatalogServer` (the threaded TCP server
    and the asyncio front-end each attach one, the way they attach a
    :class:`~repro.replication.hub.ReplicationHub`).  It also carries the
    serving-wide live gauges (open connections, open cursors) so the
    versioned ``live`` stats section has one home.

    Thread-safe.  The publish listener runs under the server's writer
    lock and only records change windows; evaluation happens on a single
    daemon dispatcher thread, started lazily with the first subscription.
    """

    def __init__(
        self,
        server: DatalogServer,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        max_queue_frames: int = DEFAULT_MAX_QUEUE_FRAMES,
        max_pending_rows: int = DEFAULT_MAX_PENDING_ROWS,
    ):
        self._server = server
        self.heartbeat_seconds = heartbeat_seconds
        self._max_queue_frames = max_queue_frames
        self._max_pending_rows = max_pending_rows
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._subscriptions: Dict[str, Subscription] = {}
        self._pending: Deque[_PendingGeneration] = deque()
        self._lengths: Dict[str, int] = {}
        self._primed = False
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None
        self._ids = itertools.count(1)
        self._counts: Dict[str, int] = {
            "subscriptions_total": 0,
            "deltas_pushed": 0,
            "rows_pushed": 0,
            "coalesced_generations": 0,
            "slow_consumer_disconnects": 0,
            "full_diff_evaluations": 0,
            "generations_seen": 0,
            "connections_total": 0,
        }
        self._open_connections = 0
        self._open_cursors = 0
        server.add_publish_listener(self._on_publish)

    @property
    def server(self) -> DatalogServer:
        return self._server

    # -- publish side (writer lock held) -------------------------------
    def _on_publish(self, generation: int, session) -> None:
        interpretation = session._core.interpretation
        changed: Dict[str, Tuple[Any, int, int]] = {}
        for predicate in interpretation.predicates():
            relation = interpretation.relation(predicate)
            length = len(relation)
            previous = self._lengths.get(predicate, 0)
            if length > previous:
                changed[predicate] = (relation, previous, length)
            self._lengths[predicate] = length
        if not self._primed:
            # The priming call add_publish_listener fires before
            # registration: anchor the length bookkeeping, enqueue nothing.
            self._primed = True
            return
        with self._condition:
            self._counts["generations_seen"] += 1
            if not self._subscriptions or self._closed:
                return
            self._pending.append(
                _PendingGeneration(generation, self._server.snapshot, changed)
            )
            self._condition.notify_all()

    # -- subscriber side ------------------------------------------------
    def subscribe(
        self, pattern: str, strict: bool = False, initial: bool = True
    ) -> Subscription:
        """Register a continuous query and anchor its initial result set.

        Parses and compiles the pattern (raising the same errors a query
        would), registers the subscription so no generation published
        from here on can be missed, then evaluates the pattern once
        against the current snapshot: as the initial delta when
        ``initial=True``, and — for domain-sensitive plans — as the
        seen-set the per-generation diff starts from.  ``strict`` refuses
        unknown predicates at watch time.
        """
        atom, canonical = canonical_pattern(pattern)
        prepared = PreparedQuery(atom)
        with self._lock:
            if self._closed:
                raise ReproError("the subscription manager is shut down")
            subscription = Subscription(
                self,
                f"s{next(self._ids)}",
                canonical,
                prepared,
                self._max_queue_frames,
                self._max_pending_rows,
            )
            self._subscriptions[subscription.id] = subscription
            self._counts["subscriptions_total"] += 1
            self._ensure_dispatcher_locked()
        try:
            snapshot = self._server.snapshot
            rows: Optional[Tuple[WireRow, ...]] = None
            if initial or subscription.full_diff or strict:
                result = self._server.query(atom, strict=strict, snapshot=snapshot)
                rows = _wire_rows(result.rows)
        except BaseException:
            with self._lock:
                self._subscriptions.pop(subscription.id, None)
            raise
        subscription.activate(
            snapshot.generation,
            rows if initial else None,
            set(rows) if subscription.full_diff and rows is not None else None,
        )
        return subscription

    def unsubscribe(self, subscription_id: str) -> bool:
        """Cancel a subscription; True when it was still registered."""
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            return False
        subscription.close()
        return True

    def get(self, subscription_id: str) -> Optional[Subscription]:
        with self._lock:
            return self._subscriptions.get(subscription_id)

    def _discard(self, subscription_id: str) -> None:
        # Called with the subscription's own lock held (slow-consumer
        # termination); the manager lock nests safely inside it.
        with self._lock:
            self._subscriptions.pop(subscription_id, None)

    # -- delta evaluation (dispatcher thread) ---------------------------
    def _ensure_dispatcher_locked(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-live-dispatch", daemon=True
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            with self._condition:
                while not self._pending and not self._closed:
                    self._condition.wait()
                if self._closed and not self._pending:
                    return
                pending = self._pending.popleft()
                subscriptions = list(self._subscriptions.values())
            for subscription in subscriptions:
                subscription.offer(pending)

    def _rows_for(
        self, subscription: Subscription, pending: _PendingGeneration
    ) -> Tuple[WireRow, ...]:
        """The rows ``pending`` adds to ``subscription``'s result set.

        Called with the subscription's lock held; evaluation is read-only
        against pinned snapshots/windows, so it never blocks writers.
        """
        if subscription.full_diff:
            # Domain-sensitive plan: full query on the new snapshot (the
            # server's per-generation result cache makes the second
            # subscriber on a pattern free), diffed against the seen-set.
            self._count("full_diff_evaluations", 1)
            result = self._server.query(
                subscription.prepared.atom, snapshot=pending.snapshot
            )
            seen = subscription._seen
            assert seen is not None
            rows = tuple(
                row for row in _wire_rows(result.rows) if row not in seen
            )
            seen.update(rows)
            return rows
        if subscription.prepared.atom.predicate not in pending.changed:
            return ()
        result = subscription.prepared.run(_DeltaView(pending))
        return _wire_rows(result.rows)

    # -- gauges and stats ----------------------------------------------
    def _count(self, key: str, amount: int) -> None:
        with self._lock:
            self._counts[key] += amount

    def connection_opened(self) -> None:
        with self._lock:
            self._open_connections += 1
            self._counts["connections_total"] += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._open_connections -= 1

    def cursor_opened(self) -> None:
        with self._lock:
            self._open_cursors += 1

    def cursor_released(self) -> None:
        with self._lock:
            self._open_cursors -= 1

    def stats(self) -> Dict[str, Any]:
        """The versioned ``live`` section of :class:`~repro.api.types.ServerStats`."""
        with self._lock:
            stats: Dict[str, Any] = {"v": 1}
            stats["open_connections"] = self._open_connections
            stats["open_cursors"] = self._open_cursors
            stats["active_subscriptions"] = len(self._subscriptions)
            stats.update(self._counts)
            stats["heartbeat_seconds"] = self.heartbeat_seconds
            return stats

    def close(self) -> None:
        """Stop the dispatcher and terminate every subscription."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            subscriptions = list(self._subscriptions.values())
            self._subscriptions.clear()
            self._condition.notify_all()
            dispatcher = self._dispatcher
        for subscription in subscriptions:
            subscription.close()
        if dispatcher is not None and dispatcher.is_alive():
            dispatcher.join(timeout=5.0)
