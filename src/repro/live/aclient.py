"""An asyncio client for the versioned TCP API, with live-query watches.

:class:`AsyncDatalogClient` is the event-loop sibling of
:class:`~repro.api.client.DatalogClient`: same framing, same typed
requests and errors, but non-blocking — and, because the asyncio
front-end serves connections duplex, one client connection can hold many
concurrent watches while still issuing ordinary requests::

    async with AsyncDatalogClient(*server.address) as client:
        watch = await client.watch("pair(X, Y)")
        await client.add_fact("base", "acgt")        # same connection
        async for delta in watch:
            handle(delta.rows)                       # typed, exact deltas

A background reader task is the only consumer of the socket: it routes
``subscription_delta`` frames (and per-subscription heartbeats and
terminal errors) to their watch's queue, and everything else to the
pending-reply queue in request order.  Request/response calls are
serialized with a lock, so replies cannot interleave.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple, Type, TypeVar, Union

from repro.api.protocol import MAX_FRAME_BYTES
from repro.api.types import (
    AddFactsRequest,
    AddFactsResponse,
    ApiError,
    ApiRequest,
    ApiResponse,
    HeartbeatFrame,
    PingRequest,
    PongResponse,
    QueryRequest,
    QueryResultPage,
    FetchRequest,
    SCHEMA_VERSION,
    ServerStats,
    StatsRequest,
    SubscriptionDelta,
    UnwatchedResponse,
    UnwatchRequest,
    WatchingResponse,
    WatchRequest,
    decode_response,
    encode_request,
)
from repro.engine.session import FactsLike
from repro.errors import ProtocolError
from repro.live.aframing import encode_frame, read_message

R = TypeVar("R", bound=ApiResponse)

_RouteItem = Union[ApiResponse, ApiError, BaseException]


class AsyncWatch:
    """One live watch: an async iterator of typed, exact deltas.

    Yields :class:`~repro.api.types.SubscriptionDelta` frames (the
    initial result set arrives first, flagged ``initial=True``, unless
    the watch was opened with ``initial=False``).  Heartbeats are
    swallowed unless ``heartbeats=True`` was requested.  A terminal
    error — the server's slow-consumer disconnect, a dropped connection —
    is raised as the library exception its code names
    (:class:`~repro.errors.SlowConsumerError`, ...).  :meth:`unwatch`
    ends the stream cleanly; so does ``break`` + ``await watch.unwatch()``.
    """

    def __init__(
        self,
        client: AsyncDatalogClient,
        subscription: str,
        pattern: str,
        generation: int,
        queue: "asyncio.Queue[_RouteItem]",
        heartbeats: bool,
    ) -> None:
        self._client = client
        self.subscription = subscription
        self.pattern = pattern
        #: Generation the initial result set was anchored on.
        self.generation = generation
        self._queue = queue
        self._heartbeats = heartbeats
        self._done = False

    def __aiter__(self) -> AsyncWatch:
        return self

    async def __anext__(self) -> Union[SubscriptionDelta, HeartbeatFrame]:
        while True:
            if self._done:
                raise StopAsyncIteration
            item = await self._queue.get()
            if isinstance(item, BaseException):
                self._done = True
                raise item
            if isinstance(item, ApiError):
                self._done = True
                item.raise_()
            if isinstance(item, HeartbeatFrame):
                if self._heartbeats:
                    return item
                continue
            if isinstance(item, SubscriptionDelta):
                return item
            # UnwatchedResponse routed here after an unwatch race.
            self._done = True
            raise StopAsyncIteration

    async def unwatch(self) -> None:
        """Cancel the watch server-side and end the iterator."""
        if not self._done:
            self._done = True
            await self._client.unwatch(self.subscription)


class AsyncDatalogClient:
    """A non-blocking client for one API server (asyncio or threaded).

    Ordinary requests (``ping``/``query``/``add_facts``/``stats``) work
    against either transport.  :meth:`watch` needs the duplex asyncio
    front-end to multiplex on one connection; against the threaded
    transport, use one client per watch (the connection flips to
    push-only there) or the sync :meth:`DatalogClient.watch`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4321,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._replies: "asyncio.Queue[_RouteItem]" = asyncio.Queue()
        self._watch_queues: Dict[str, "asyncio.Queue[_RouteItem]"] = {}
        #: Frames for a subscription whose queue is not registered yet
        #: (the ack and the first deltas can race the registration).
        self._orphans: Dict[str, List[_RouteItem]] = {}
        self._lock = asyncio.Lock()
        self._closed = False
        self.server_versions: Tuple[int, ...] = ()
        self.server_version: Optional[str] = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> AsyncDatalogClient:
        """Connect and negotiate the schema version (idempotent)."""
        if self._writer is None:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            self._reader, self._writer = reader, writer
            self._closed = False
            self._reader_task = asyncio.ensure_future(self._read_loop())
            pong = await self.ping()
            if SCHEMA_VERSION not in pong.versions:
                versions = ", ".join(map(str, pong.versions)) or "none"
                await self.close()
                raise ProtocolError(
                    f"server speaks schema versions [{versions}], "
                    f"this client needs v{SCHEMA_VERSION}"
                )
        return self

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (OSError, ConnectionError):
                pass
            self._writer = None
            self._reader = None
        self._fail_pending(ProtocolError("client closed"))

    async def __aenter__(self) -> AsyncDatalogClient:
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # ------------------------------------------------------------------
    # Reader task: the only consumer of the socket
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                message = await read_message(self._reader, self.max_frame_bytes)
                if message is None:
                    raise ProtocolError(
                        "server closed the connection"
                    )
                self._route(decode_response(message))
        except asyncio.CancelledError:
            raise
        except (OSError, ConnectionError, ProtocolError) as error:
            self._fail_pending(error)

    def _route(self, response: Union[ApiResponse, ApiError]) -> None:
        subscription: Optional[str] = None
        if isinstance(response, SubscriptionDelta):
            subscription = response.subscription
        elif isinstance(response, HeartbeatFrame) and response.subscription:
            subscription = response.subscription
        elif isinstance(response, ApiError):
            target = response.details.get("subscription")
            if isinstance(target, str) and (
                target in self._watch_queues or target in self._orphans
            ):
                subscription = target
        if subscription is None:
            self._replies.put_nowait(response)
            return
        queue = self._watch_queues.get(subscription)
        if queue is None:
            # The registration in watch() has not run yet; buffer.
            self._orphans.setdefault(subscription, []).append(response)
        else:
            queue.put_nowait(response)

    def _fail_pending(self, error: BaseException) -> None:
        self._replies.put_nowait(error)
        for queue in self._watch_queues.values():
            queue.put_nowait(error)
        self._watch_queues.clear()
        self._orphans.clear()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    async def _request(self, request: ApiRequest) -> ApiResponse:
        async with self._lock:
            if self._writer is None:
                await self.connect()
            assert self._writer is not None
            self._writer.write(
                encode_frame(encode_request(request), self.max_frame_bytes)
            )
            await self._writer.drain()
            item = await self._replies.get()
        if isinstance(item, BaseException):
            raise item
        if isinstance(item, ApiError):
            item.raise_()
        return item

    async def _expect(self, request: ApiRequest, response_type: Type[R]) -> R:
        response = await self._request(request)
        if not isinstance(response, response_type):
            raise ProtocolError(
                f"expected a {response_type.kind} reply to {request.op!r}, "
                f"got {type(response).__name__}"
            )
        return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    async def ping(self) -> PongResponse:
        pong = await self._expect(PingRequest(), PongResponse)
        self.server_versions = pong.versions
        self.server_version = pong.server_version
        return pong

    async def query(
        self,
        pattern: str,
        strict: bool = False,
        witnesses: bool = False,
        page_size: Optional[int] = None,
        min_generation: Optional[int] = None,
        min_generation_timeout: Optional[float] = None,
    ) -> QueryResultPage:
        """Answer one pattern, reassembling every page into one result."""
        page = await self._expect(
            QueryRequest(
                pattern=pattern,
                strict=strict,
                page_size=page_size,
                include_witnesses=witnesses,
                min_generation=min_generation,
                min_generation_timeout=min_generation_timeout,
            ),
            QueryResultPage,
        )
        pages = [page]
        while not page.complete:
            if page.cursor is None:
                raise ProtocolError("incomplete page arrived without a cursor")
            page = await self._expect(
                FetchRequest(cursor=page.cursor), QueryResultPage
            )
            pages.append(page)
        return QueryResultPage.merge(pages) if len(pages) > 1 else pages[0]

    async def add_facts(self, facts: FactsLike) -> AddFactsResponse:
        from repro.api.client import _normalize_facts

        return await self._expect(
            AddFactsRequest(facts=_normalize_facts(facts)), AddFactsResponse
        )

    async def add_fact(self, predicate: str, *values: str) -> AddFactsResponse:
        return await self.add_facts([(predicate, values)])

    async def stats(self) -> ServerStats:
        return await self._expect(StatsRequest(), ServerStats)

    async def raw_request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw wire object; the raw reply dict (diagnostics)."""
        async with self._lock:
            if self._writer is None:
                await self.connect()
            assert self._writer is not None
            self._writer.write(encode_frame(message, self.max_frame_bytes))
            await self._writer.drain()
            item = await self._replies.get()
        if isinstance(item, BaseException):
            raise item
        from repro.api.types import encode_response

        return encode_response(item)

    # ------------------------------------------------------------------
    # Live queries
    # ------------------------------------------------------------------
    async def watch(
        self,
        pattern: str,
        strict: bool = False,
        initial: bool = True,
        heartbeats: bool = False,
    ) -> AsyncWatch:
        """Open a continuous query; returns the :class:`AsyncWatch` stream.

        The server acknowledges with the subscription id and the
        generation the initial result set is anchored on; every
        subsequent published generation that changes the answer arrives
        as one exact :class:`~repro.api.types.SubscriptionDelta`.
        """
        ack = await self._expect(
            WatchRequest(pattern=pattern, strict=strict, initial=initial),
            WatchingResponse,
        )
        queue: "asyncio.Queue[_RouteItem]" = asyncio.Queue()
        self._watch_queues[ack.subscription] = queue
        for item in self._orphans.pop(ack.subscription, ()):
            queue.put_nowait(item)
        return AsyncWatch(
            self, ack.subscription, ack.pattern, ack.generation, queue,
            heartbeats,
        )

    async def unwatch(self, subscription: str) -> None:
        """Cancel one subscription server-side and drop its queue."""
        try:
            await self._expect(
                UnwatchRequest(subscription=subscription), UnwatchedResponse
            )
        finally:
            self._watch_queues.pop(subscription, None)
            self._orphans.pop(subscription, None)

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"AsyncDatalogClient({self.host}:{self.port}, {state})"
