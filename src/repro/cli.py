"""Command-line interface for the Sequence Datalog engine.

Five subcommands cover the typical workflow::

    python -m repro.cli run program.sdl --db database.json --query "answer(X)"
    python -m repro.cli serve program.sdl --db database.json --script cmds.txt
    python -m repro.cli analyze program.sdl
    python -m repro.cli explain program.sdl
    python -m repro.cli parse program.sdl

* ``run`` evaluates a program over a database given as a JSON object mapping
  relation names to lists of strings (unary relations) or lists of string
  lists (n-ary relations), then prints the answers to the query pattern.
  ``--strategy`` selects the evaluation core (``compiled`` by default;
  ``naive`` and ``semi-naive`` are the interpreted references;
  ``parallel`` fires independent strata concurrently over a worker pool
  sized by ``--workers``).
  ``--demand`` answers the query demand-driven: instead of materialising
  the full least fixpoint, only the slice of the model the query pattern
  transitively depends on is computed, with the pattern's constants pushed
  into the defining clauses (magic-set-style relevance restriction).
* ``serve`` opens an incremental :class:`~repro.engine.session.DatalogSession`
  over the program, then executes commands from ``--script`` (or stdin), one
  per line: ``query <pattern>`` (alias ``?``), ``add <relation> <values...>``
  (alias ``+``, incrementally maintained — no recomputation from scratch),
  ``stats``, and ``quit``.  Errors in a command are reported and the session
  keeps serving — except after a maintenance run fails on a resource limit,
  which leaves the resident model a partial fixpoint: the session is then
  poisoned and every later ``query`` is refused with a clear error.
  ``--demand`` serves queries from lazy, per-query demand slices without
  ever materialising the full model.  ``--workers N`` serves through the
  thread-safe :class:`~repro.engine.server.DatalogServer` instead:
  queries answer from pinned, snapshot-isolated model views with a
  per-snapshot result cache, and maintenance runs on a parallel fixpoint
  pool of ``N`` workers.
* ``analyze`` prints the strong-safety report and the finiteness verdict.
* ``explain`` prints the compiled evaluation plan: the dependency strata,
  each clause's join order and the index columns every scan uses.
* ``parse`` pretty-prints the parsed program (a syntax check).

The CLI is intentionally thin: it only wires files and flags into the same
public API the examples use, so it is fully covered by unit tests without
any subprocess machinery.
"""

from __future__ import annotations

import argparse
import json
import shlex
import sys
from typing import Optional, Sequence

from repro.analysis import classify_finiteness
from repro.core.engine_api import SequenceDatalogEngine
from repro.database.database import SequenceDatabase
from repro.engine.fixpoint import DEFAULT_STRATEGY, STRATEGIES
from repro.engine.limits import EvaluationLimits
from repro.engine.planner import compile_program
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import ReproError
from repro.language.parser import parse_program


def _load_program(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def load_database_json(path: str) -> SequenceDatabase:
    """Load a database from a JSON file ``{"relation": ["seq", ["a", "b"]]}``.

    Malformed rows (empty lists, JSON numbers, nested lists) are rejected
    with the offending relation and row named, via
    :meth:`SequenceDatabase.from_json_dict`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    return SequenceDatabase.from_json_dict(raw)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequence Datalog engine (Bonner & Mecca reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate a program and query it")
    run_parser.add_argument("program", help="path to the Sequence Datalog program")
    run_parser.add_argument("--db", required=True, help="path to the JSON database")
    run_parser.add_argument("--query", required=True, help="pattern atom, e.g. answer(X)")
    run_parser.add_argument(
        "--max-iterations", type=int, default=EvaluationLimits().max_iterations,
        help="iteration limit for the fixpoint computation",
    )
    run_parser.add_argument(
        "--strategy", choices=list(STRATEGIES), default=DEFAULT_STRATEGY,
        help="bottom-up evaluation strategy",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --strategy parallel (default: CPU count)",
    )
    run_parser.add_argument(
        "--demand", action="store_true",
        help="demand-driven evaluation: materialize only the slice of the "
             "model the query pattern can observe (magic-set-style relevance "
             "restriction with constant pushing) instead of the full fixpoint",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="incremental query-serving session (batch or stdin)"
    )
    serve_parser.add_argument("program", help="path to the Sequence Datalog program")
    serve_parser.add_argument("--db", help="optional JSON database loaded at startup")
    serve_parser.add_argument(
        "--script",
        help="command file (one command per line); reads stdin when omitted",
    )
    serve_parser.add_argument(
        "--max-iterations", type=int, default=EvaluationLimits().max_iterations,
        help="iteration limit for each maintenance run",
    )
    serve_parser.add_argument(
        "--demand", action="store_true",
        help="serve queries from lazy, cached per-query demand slices; the "
             "full model is never materialized up front",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="serve through the thread-safe DatalogServer (snapshot-"
             "isolated reads, cached/batched queries) with a parallel-"
             "maintenance pool of this size; incompatible with --demand",
    )

    analyze_parser = subparsers.add_parser("analyze", help="safety and finiteness analysis")
    analyze_parser.add_argument("program", help="path to the Sequence Datalog program")

    explain_parser = subparsers.add_parser(
        "explain", help="print the compiled evaluation plan"
    )
    explain_parser.add_argument("program", help="path to the Sequence Datalog program")

    parse_parser = subparsers.add_parser("parse", help="parse and pretty-print a program")
    parse_parser.add_argument("program", help="path to the Sequence Datalog program")

    return parser


def _command_run(args: argparse.Namespace, out) -> int:
    limits = EvaluationLimits(max_iterations=args.max_iterations)
    engine = SequenceDatalogEngine(_load_program(args.program), limits=limits)
    database = load_database_json(args.db)
    if args.demand:
        compiled = engine.compile_demand(args.query)
        slice_result = compiled.materialize(database, limits)
        answers = compiled.query(slice_result)
        for row in answers.texts():
            print("\t".join(row), file=out)
        mode = (
            f"slice of {len(slice_result.profile.relevant)} relevant predicates"
            if slice_result.profile.restricted
            else "full model (demand fallback)"
        )
        print(
            f"% {len(answers)} answers, {slice_result.fact_count} facts "
            f"materialized ({mode}), {slice_result.sweeps} sweeps",
            file=out,
        )
        return 0
    result = engine.evaluate(database, strategy=args.strategy, workers=args.workers)
    answers = engine.query(result, args.query)
    for row in answers.texts():
        print("\t".join(row), file=out)
    print(
        f"% {len(answers)} answers, {result.fact_count} facts, "
        f"{result.iterations} iterations",
        file=out,
    )
    return 0


def _serve_one(
    session, command: str, rest: str, out, demand: bool = False
) -> bool:
    """Execute one serve command; return False when the session should end.

    ``session`` is a :class:`DatalogSession` or (under ``--workers``) a
    :class:`~repro.engine.server.DatalogServer`; both expose the same
    ``query`` / ``add_facts`` / ``stats`` surface used here.
    """
    if command in ("query", "?"):
        if demand:
            result = session.query(rest.strip(), demand=True)
        else:
            result = session.query(rest.strip())
        for row in result.texts():
            print("\t".join(row), file=out)
        print(f"% {len(result)} answers", file=out)
    elif command in ("add", "+"):
        # shlex honours the quoted-constant syntax of query patterns:
        # ``add r "a b"`` stores the single two-symbol-with-space sequence.
        try:
            parts = shlex.split(rest)
        except ValueError as error:
            print(f"error: {error}", file=out)
            return True
        if len(parts) < 2:
            print("error: add needs a relation name and at least one value", file=out)
            return True
        report = session.add_facts([(parts[0], tuple(parts[1:]))])
        print(
            f"% +{report.facts_added} facts ({report.base_facts_added} base) "
            f"in {report.sweeps} sweeps",
            file=out,
        )
    elif command == "stats":
        print(json.dumps(session.stats(), sort_keys=True), file=out)
    elif command in ("quit", "exit"):
        return False
    else:
        print(f"error: unknown command {command!r}", file=out)
    return True


def _command_serve(args: argparse.Namespace, out) -> int:
    limits = EvaluationLimits(max_iterations=args.max_iterations)
    database = load_database_json(args.db) if args.db else None
    if args.workers is not None and args.demand:
        print("error: --workers serves full snapshots; drop --demand", file=out)
        return 1
    if args.workers is not None:
        session = DatalogServer(
            _load_program(args.program),
            database,
            limits=limits,
            workers=args.workers,
        )
        mode = f" (server mode: {args.workers} workers, snapshot-isolated)"
        fact_count = session.snapshot.fact_count()
    else:
        session = DatalogSession(
            _load_program(args.program), database, limits=limits, lazy=args.demand
        )
        mode = " (demand mode: lazy per-query slices)" if args.demand else ""
        fact_count = session.fact_count()
    print(f"% serving {fact_count} facts{mode}", file=out)
    if args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin
    try:
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            command, _, rest = line.partition(" ")
            try:
                if not _serve_one(session, command, rest, out, demand=args.demand):
                    break
            except ReproError as error:
                # One bad command must not take the whole session down.  A
                # poisoned session (failed maintenance run) keeps refusing
                # queries through SessionPoisonedError, reported the same way.
                print(f"error: {error}", file=out)
    finally:
        session.close()
    return 0


def _command_analyze(args: argparse.Namespace, out) -> int:
    program = parse_program(_load_program(args.program))
    report = classify_finiteness(program)
    print(report.describe(), file=out)
    return 0


def _command_explain(args: argparse.Namespace, out) -> int:
    program = parse_program(_load_program(args.program))
    program.validate()
    print(compile_program(program).explain(), file=out)
    return 0


def _command_parse(args: argparse.Namespace, out) -> int:
    program = parse_program(_load_program(args.program))
    program.validate()
    print(str(program), file=out)
    print(f"% {len(program)} clauses, predicates: {', '.join(sorted(program.predicates()))}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args, out)
        if args.command == "serve":
            return _command_serve(args, out)
        if args.command == "analyze":
            return _command_analyze(args, out)
        if args.command == "explain":
            return _command_explain(args, out)
        return _command_parse(args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1
    except OSError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
