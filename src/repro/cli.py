"""Command-line interface for the Sequence Datalog engine.

The subcommands cover the typical workflow::

    python -m repro.cli run program.sdl --db database.json --query "answer(X)"
    python -m repro.cli serve program.sdl --db database.json --script cmds.txt
    python -m repro.cli serve program.sdl --data-dir state/ --tcp :4321
    python -m repro.cli serve program.sdl --tcp :4322 --follow :4321
    python -m repro.cli client :4321 --script cmds.txt
    python -m repro.cli route :4321 :4322 :4323 --script cmds.txt
    python -m repro.cli snapshot program.sdl --data-dir state/
    python -m repro.cli restore program.sdl --data-dir state/ --out db.json
    python -m repro.cli analyze program.sdl
    python -m repro.cli lint program.sdl --db database.json
    python -m repro.cli explain program.sdl
    python -m repro.cli parse program.sdl

* ``run`` evaluates a program over a database given as a JSON object mapping
  relation names to lists of strings (unary relations) or lists of string
  lists (n-ary relations), then prints the answers to the query pattern.
  ``--strategy`` selects the evaluation core (``compiled`` by default;
  ``naive`` and ``semi-naive`` are the interpreted references;
  ``parallel`` fires independent strata concurrently over a worker pool
  sized by ``--workers``).
  ``--demand`` answers the query demand-driven: instead of materialising
  the full least fixpoint, only the slice of the model the query pattern
  transitively depends on is computed, with the pattern's constants pushed
  into the defining clauses (magic-set-style relevance restriction).
* ``serve`` opens an incremental :class:`~repro.engine.session.DatalogSession`
  over the program, then executes commands from ``--script`` (or stdin), one
  per line: ``query <pattern>`` (alias ``?``), ``add <relation> <values...>``
  (alias ``+``, incrementally maintained — no recomputation from scratch),
  ``stats``, and ``quit``.  Errors in a command are reported and the session
  keeps serving — except after a maintenance run fails on a resource limit,
  which leaves the resident model a partial fixpoint: the session is then
  poisoned and every later ``query`` is refused with a clear error.
  ``--demand`` serves queries from lazy, per-query demand slices without
  ever materialising the full model.  ``--workers N`` serves through the
  thread-safe :class:`~repro.engine.server.DatalogServer` instead:
  queries answer from pinned, snapshot-isolated model views with a
  per-snapshot result cache, and maintenance runs on a parallel fixpoint
  pool of ``N`` workers.

  Every command is executed through the versioned typed API
  (:mod:`repro.api`).  ``--json`` switches the reply stream to one
  schema-versioned JSON object per line: results are
  ``QueryResultPage``/``AddFactsResponse``/``ServerStats`` envelopes and
  every failure is a structured ``ApiError`` (stable code, message, and
  the offending input line number) — the process then exits non-zero when
  any input line was malformed.  ``--tcp HOST:PORT`` serves the same API
  over TCP (`docs/SERVING.md`); with ``--script`` the commands are run
  through a loopback :class:`~repro.api.client.DatalogClient` against the
  freshly-bound server (an end-to-end self-test), otherwise the server
  runs in the foreground until interrupted.
* ``client`` connects a :class:`~repro.api.client.DatalogClient` to a
  running ``serve --tcp`` address and executes the same command loop
  (large results stream page-by-page through server-side cursors).

  ``serve --tcp ... --follow LEADER:PORT`` serves the same program as a
  read-only replica of a running leader (`docs/REPLICATION.md`): it
  bootstraps from the leader's snapshot stream, applies every published
  generation through incremental maintenance, and answers writes with a
  ``not_leader`` redirect carrying the leader's address.
* ``route`` runs the command loop against a whole replicated fleet:
  queries rotate across live followers, ``add`` goes to the discovered
  leader, and the extra ``topology`` command prints the role map.
  ``--read-your-writes`` bounds staleness: each query waits until the
  serving follower has caught up to this client's last write.

  ``serve --data-dir DIR`` makes the backend durable (:mod:`repro.storage`):
  prior state is recovered from ``DIR`` before serving, every batch is
  write-ahead logged, and shutdown — including SIGTERM/SIGINT on the
  foreground server — flushes the log and writes a final snapshot.
* ``snapshot`` opens a data directory (running recovery) and forces a
  synchronous checkpoint, so the next restart is a pure snapshot load.
* ``restore`` opens a data directory and reports what recovery did
  (snapshot used, WAL batches replayed, uncommitted batches dropped);
  ``--out db.json`` additionally exports the recovered base facts as a
  JSON database loadable through ``--db``.
* ``analyze`` prints the strong-safety report and the finiteness verdict
  (``--json`` for a machine-readable object) and exits ``1`` when the
  verdict is ``POSSIBLY_INFINITE``, so CI can gate on it.
* ``lint`` runs the program diagnostics engine
  (:mod:`repro.analysis.diagnostics`): semantic errors, the paper's static
  theory with source locations, hygiene hints and planner-aware
  performance lints, rendered with caret-underlined source excerpts
  (``--json`` for the wire payload).  The exit code is ``2`` on errors,
  ``1`` with ``--strict`` when warnings or perf lints are present, ``0``
  otherwise — hints never gate.
* ``explain`` prints the compiled evaluation plan: the dependency strata,
  each clause's join order and the index columns every scan uses —
  followed by the lint findings in compact form.
* ``parse`` pretty-prints the parsed program (a syntax check).

The CLI is intentionally thin: it only wires files and flags into the same
public API the examples use, so it is fully covered by unit tests without
any subprocess machinery.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import shlex
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.analysis import classify_finiteness
from repro.api.client import DatalogClient
from repro.api.service import DatalogService
from repro.api.transport import parse_address, serve_tcp
from repro.api.types import (
    AddFactsRequest,
    ApiError,
    ErrorCode,
    FetchRequest,
    QueryRequest,
    QueryResultPage,
    StatsRequest,
    encode_response,
)
from repro.core.engine_api import SequenceDatalogEngine
from repro.database.database import SequenceDatabase
from repro.engine.fixpoint import DEFAULT_STRATEGY, STRATEGIES
from repro.engine.limits import EvaluationLimits
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import ProtocolError, ReproError
from repro.language.parser import parse_program


def _load_program(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def load_database_json(path: str) -> SequenceDatabase:
    """Load a database from a JSON file ``{"relation": ["seq", ["a", "b"]]}``.

    Malformed rows (empty lists, JSON numbers, nested lists) are rejected
    with the offending relation and row named, via
    :meth:`SequenceDatabase.from_json_dict`.
    """
    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    return SequenceDatabase.from_json_dict(raw)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequence Datalog engine (Bonner & Mecca reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate a program and query it")
    run_parser.add_argument("program", help="path to the Sequence Datalog program")
    run_parser.add_argument("--db", required=True, help="path to the JSON database")
    run_parser.add_argument("--query", required=True, help="pattern atom, e.g. answer(X)")
    run_parser.add_argument(
        "--max-iterations", type=int, default=EvaluationLimits().max_iterations,
        help="iteration limit for the fixpoint computation",
    )
    run_parser.add_argument(
        "--strategy", choices=list(STRATEGIES), default=DEFAULT_STRATEGY,
        help="bottom-up evaluation strategy",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --strategy parallel (default: CPU count)",
    )
    run_parser.add_argument(
        "--demand", action="store_true",
        help="demand-driven evaluation: materialize only the slice of the "
             "model the query pattern can observe (magic-set-style relevance "
             "restriction with constant pushing) instead of the full fixpoint",
    )
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit the answers as one schema-versioned QueryResultPage "
             "JSON object instead of tab-separated text",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="incremental query-serving session (batch or stdin)"
    )
    serve_parser.add_argument("program", help="path to the Sequence Datalog program")
    serve_parser.add_argument("--db", help="optional JSON database loaded at startup")
    serve_parser.add_argument(
        "--script",
        help="command file (one command per line); reads stdin when omitted",
    )
    serve_parser.add_argument(
        "--max-iterations", type=int, default=EvaluationLimits().max_iterations,
        help="iteration limit for each maintenance run",
    )
    serve_parser.add_argument(
        "--demand", action="store_true",
        help="serve queries from lazy, cached per-query demand slices; the "
             "full model is never materialized up front",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="serve through the thread-safe DatalogServer (snapshot-"
             "isolated reads, cached/batched queries) with a parallel-"
             "maintenance pool of this size; incompatible with --demand",
    )
    serve_parser.add_argument(
        "--json", action="store_true",
        help="reply with one schema-versioned JSON object per line "
             "(typed results; structured ApiError objects carrying the "
             "offending line number; non-zero exit on malformed input)",
    )
    serve_parser.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="serve the versioned API over TCP instead of the stdin loop "
             "(port 0 picks a free port; with --script the commands run "
             "through a loopback client against the bound server)",
    )
    serve_parser.add_argument(
        "--async", dest="async_", action="store_true",
        help="with --tcp: serve on the asyncio front-end (event-loop "
             "connection handling on a small thread pool — tens of "
             "thousands of idle connections or live-query watches — and "
             "duplex connections: watches and requests multiplex on one "
             "socket)",
    )
    serve_parser.add_argument(
        "--data-dir", metavar="DIR",
        help="durable serving: recover prior state from DIR (snapshot plus "
             "WAL-tail replay), write-ahead log every later batch, and on "
             "shutdown (including SIGTERM/SIGINT) flush the log and write "
             "a final snapshot",
    )
    serve_parser.add_argument(
        "--follow", metavar="HOST:PORT",
        help="serve as a read-only replica of the leader at HOST:PORT: "
             "bootstrap from its snapshot stream, apply every published "
             "generation incrementally, answer writes with a not_leader "
             "redirect (requires --tcp; the leader holds the data, so "
             "--db/--data-dir/--demand do not apply)",
    )

    client_parser = subparsers.add_parser(
        "client", help="connect to a serve --tcp address and run commands"
    )
    client_parser.add_argument("address", help="server address (HOST:PORT or :PORT)")
    client_parser.add_argument(
        "--script",
        help="command file (one command per line); reads stdin when omitted",
    )
    client_parser.add_argument(
        "--json", action="store_true",
        help="reply with one schema-versioned JSON object per line",
    )
    client_parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="socket timeout in seconds (default 30)",
    )
    client_parser.add_argument(
        "--page-size", type=int, default=1024,
        help="rows per streamed page for large results (default 1024)",
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help="subscribe to a continuous query on a serve --tcp address and "
             "stream its exact result deltas",
    )
    watch_parser.add_argument("address", help="server address (HOST:PORT or :PORT)")
    watch_parser.add_argument(
        "pattern", help="query pattern to watch, e.g. 'path(X, Y)'"
    )
    watch_parser.add_argument(
        "--json", action="store_true",
        help="emit one schema-versioned subscription_delta JSON object per "
             "generation instead of tab-separated rows",
    )
    watch_parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit successfully after N delta frames (default: stream "
             "until interrupted or the server terminates the watch)",
    )
    watch_parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="connect timeout in seconds (default 30)",
    )
    watch_parser.add_argument(
        "--no-initial", action="store_true",
        help="skip the initial result set; stream only changes published "
             "after the subscription anchors",
    )
    watch_parser.add_argument(
        "--strict", action="store_true",
        help="refuse patterns over predicates the program does not define",
    )

    route_parser = subparsers.add_parser(
        "route",
        help="fleet client: reads across followers, writes to the leader",
    )
    route_parser.add_argument(
        "endpoints", nargs="+", metavar="HOST:PORT",
        help="fleet addresses in any order; roles (leader/follower) are "
             "discovered from each endpoint's stats",
    )
    route_parser.add_argument(
        "--script",
        help="command file (one command per line); reads stdin when omitted",
    )
    route_parser.add_argument(
        "--json", action="store_true",
        help="reply with one schema-versioned JSON object per line",
    )
    route_parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="socket timeout in seconds (default 30)",
    )
    route_parser.add_argument(
        "--page-size", type=int, default=1024,
        help="rows per streamed page for large results (default 1024)",
    )
    route_parser.add_argument(
        "--read-your-writes", action="store_true",
        help="stamp every query with the generation of the last write "
             "through this client, so a lagging follower holds the read "
             "until it has caught up",
    )

    analyze_parser = subparsers.add_parser("analyze", help="safety and finiteness analysis")
    analyze_parser.add_argument("program", help="path to the Sequence Datalog program")
    analyze_parser.add_argument(
        "--json", action="store_true",
        help="emit the verdict and safety report as one JSON object",
    )

    lint_parser = subparsers.add_parser(
        "lint", help="program diagnostics: errors, theory warnings, perf lints"
    )
    lint_parser.add_argument("program", help="path to the Sequence Datalog program")
    lint_parser.add_argument(
        "--db", help="optional JSON database; enables the database-dependent "
                     "rules (undefined predicates, relation arity conflicts)",
    )
    lint_parser.add_argument(
        "--query", action="append", default=[], metavar="PATTERN",
        help="query pattern checked against the program's signatures "
             "(repeatable)",
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit the diagnostic report as one JSON object instead of "
             "human-readable blocks",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="also exit 1 when warnings or perf lints are present "
             "(errors always exit 2; hints never gate)",
    )

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="force a durability checkpoint of a data directory"
    )
    snapshot_parser.add_argument("program", help="path to the Sequence Datalog program")
    snapshot_parser.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="data directory to recover and checkpoint",
    )
    snapshot_parser.add_argument(
        "--json", action="store_true",
        help="emit the durability counters as one JSON object",
    )

    restore_parser = subparsers.add_parser(
        "restore", help="recover a data directory and report what was restored"
    )
    restore_parser.add_argument("program", help="path to the Sequence Datalog program")
    restore_parser.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="data directory to recover (snapshot plus WAL-tail replay)",
    )
    restore_parser.add_argument(
        "--out", metavar="FILE",
        help="also export the recovered base facts as a JSON database "
             "(loadable back through --db)",
    )
    restore_parser.add_argument(
        "--json", action="store_true",
        help="emit the recovery report as one JSON object",
    )

    explain_parser = subparsers.add_parser(
        "explain", help="print the compiled evaluation plan"
    )
    explain_parser.add_argument("program", help="path to the Sequence Datalog program")

    parse_parser = subparsers.add_parser("parse", help="parse and pretty-print a program")
    parse_parser.add_argument("program", help="path to the Sequence Datalog program")

    return parser


def _command_run(args: argparse.Namespace, out) -> int:
    if args.json:
        # JSON mode promises one JSON object per reply, errors included.
        try:
            return _run_once(args, out)
        except ReproError as error:
            _emit_json(out, ApiError.from_exception(error))
            return 1
    return _run_once(args, out)


def _run_once(args: argparse.Namespace, out) -> int:
    limits = EvaluationLimits(max_iterations=args.max_iterations)
    engine = SequenceDatalogEngine(_load_program(args.program), limits=limits)
    database = load_database_json(args.db)
    # Validate the pattern through the typed schema before evaluating
    # anything: an empty/blank --query is a field-level error, not a crash.
    QueryRequest(pattern=args.query).validate()
    if args.demand:
        compiled = engine.compile_demand(args.query)
        slice_result = compiled.materialize(database, limits)
        answers = compiled.query(slice_result)
        if args.json:
            _emit_json(out, _page_of(answers))
            return 0
        for row in answers.texts():
            print("\t".join(row), file=out)
        mode = (
            f"slice of {len(slice_result.profile.relevant)} relevant predicates"
            if slice_result.profile.restricted
            else "full model (demand fallback)"
        )
        print(
            f"% {len(answers)} answers, {slice_result.fact_count} facts "
            f"materialized ({mode}), {slice_result.sweeps} sweeps",
            file=out,
        )
        return 0
    result = engine.evaluate(database, strategy=args.strategy, workers=args.workers)
    answers = engine.query(result, args.query)
    if args.json:
        _emit_json(out, _page_of(answers))
        return 0
    for row in answers.texts():
        print("\t".join(row), file=out)
    print(
        f"% {len(answers)} answers, {result.fact_count} facts, "
        f"{result.iterations} iterations",
        file=out,
    )
    return 0


def _page_of(result) -> QueryResultPage:
    """A monolithic typed page over an in-process QueryResult."""
    return QueryResultPage.from_result(result, result.window(witnesses=True))


def _emit_json(out, response, line_number: Optional[int] = None) -> None:
    """Print one schema-versioned JSON envelope (with the input line number)."""
    envelope = encode_response(response)
    if line_number is not None:
        envelope["line"] = line_number
    print(json.dumps(envelope, sort_keys=True), file=out)


def _parse_add_command(rest: str) -> AddFactsRequest:
    """``add <relation> <values...>`` → a typed request.

    shlex honours the quoted-constant syntax of query patterns:
    ``add r "a b"`` stores the single two-symbol-with-space sequence.
    """
    try:
        parts = shlex.split(rest)
    except ValueError as error:
        raise ApiErrorSignal(
            ApiError(code=ErrorCode.BAD_REQUEST, message=str(error))
        ) from None
    if len(parts) < 2:
        raise ApiErrorSignal(ApiError(
            code=ErrorCode.BAD_REQUEST,
            message="add needs a relation name and at least one value",
        ))
    return AddFactsRequest(facts=((parts[0], tuple(parts[1:])),))


class ApiErrorSignal(Exception):
    """Carries a typed ApiError through the command loop's control flow."""

    def __init__(self, error: ApiError):
        super().__init__(error.message)
        self.error = error


class _ServiceCommands:
    """Execute serve-loop commands through an in-process DatalogService."""

    def __init__(self, service: DatalogService):
        self._service = service

    def query_pages(self, pattern: str):
        page = self._service.handle(QueryRequest(pattern=pattern))
        yield page
        while not page.complete and page.cursor is not None:
            page = self._service.handle(FetchRequest(cursor=page.cursor))
            yield page

    def add(self, request: AddFactsRequest):
        return self._service.handle(request)

    def stats(self):
        return self._service.handle(StatsRequest())


class _ClientCommands:
    """Execute the same commands through a remote DatalogClient."""

    def __init__(self, client: DatalogClient, page_size: int):
        self._client = client
        self._page_size = page_size

    def query_pages(self, pattern: str):
        return self._client.query_pages(pattern, page_size=self._page_size)

    def add(self, request: AddFactsRequest):
        return self._client.add_facts(list(request.facts))

    def stats(self):
        return self._client.stats()


class _RouterCommands:
    """Execute the same commands across a replicated fleet.

    Reads rotate over followers, writes go to the leader (following
    ``not_leader`` redirects); the extra ``topology`` command prints the
    discovered role map.
    """

    def __init__(self, router, page_size: int):
        self._router = router
        self._page_size = page_size

    def query_pages(self, pattern: str):
        # The router reassembles pages internally (failover mid-cursor on
        # a different node would splice two snapshots), so one page comes
        # back per query.
        yield self._router.query(pattern, page_size=self._page_size)

    def add(self, request: AddFactsRequest):
        return self._router.add_facts(list(request.facts))

    def stats(self):
        stats_map = self._router.stats()
        leader = self._router.leader
        if leader is not None and leader in stats_map:
            return stats_map[leader]
        for stats in stats_map.values():
            return stats
        raise ProtocolError("no fleet endpoint reachable")

    def topology(self):
        return self._router.refresh()


def _command_loop(commands, lines, out, json_mode: bool) -> int:
    """The shared serve/client command loop over a typed command executor.

    Text mode keeps the historical free-text output (rows, ``% ...``
    summaries, ``error: ...`` lines) and always exits 0 — one bad command
    must not take the session down.  JSON mode emits one schema-versioned
    envelope per reply, tags every envelope with the input line number,
    and exits non-zero if any input line was malformed.
    """
    errors = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        command, _, rest = line.partition(" ")
        try:
            if command in ("query", "?"):
                rows = []
                for page in commands.query_pages(rest.strip()):
                    if json_mode:
                        _emit_json(out, page, line_number)
                    else:
                        rows.extend(page.rows)
                if not json_mode:
                    # Historical output: rows sorted, like the old serve
                    # loop's result.texts() (and like `run`).  JSON mode
                    # streams pages instead and never collects.
                    for row in sorted(rows):
                        print("\t".join(row), file=out)
                    print(f"% {len(rows)} answers", file=out)
            elif command in ("add", "+"):
                report = commands.add(_parse_add_command(rest))
                if json_mode:
                    _emit_json(out, report, line_number)
                else:
                    print(
                        f"% +{report.facts_added} facts "
                        f"({report.base_facts_added} base) "
                        f"in {report.sweeps} sweeps",
                        file=out,
                    )
            elif command == "stats":
                stats = commands.stats()
                if json_mode:
                    _emit_json(out, stats, line_number)
                else:
                    print(json.dumps(stats.to_payload(), sort_keys=True), file=out)
            elif command == "topology" and hasattr(commands, "topology"):
                # Fleet-aware executors only (repro route): the discovered
                # role map, as a CLI-local envelope in JSON mode.
                topology = commands.topology()
                if json_mode:
                    envelope = {
                        "v": 1, "ok": True, "kind": "topology",
                        "topology": topology, "line": line_number,
                    }
                    print(json.dumps(envelope, sort_keys=True), file=out)
                else:
                    for endpoint in sorted(topology):
                        info = topology[endpoint]
                        extras = ", ".join(
                            f"{key}={info[key]}"
                            for key in ("generation", "lag", "leader")
                            if key in info
                        )
                        print(
                            f"% {endpoint}: {info['role']}"
                            + (f" ({extras})" if extras else ""),
                            file=out,
                        )
            elif command in ("quit", "exit"):
                break
            else:
                known = ["query", "add", "stats", "quit"]
                if hasattr(commands, "topology"):
                    known.insert(3, "topology")
                raise ApiErrorSignal(ApiError(
                    code=ErrorCode.BAD_REQUEST,
                    message=f"unknown command {command!r}",
                    details={"known_commands": known},
                ))
        except ApiErrorSignal as signal:
            errors += 1
            if json_mode:
                _emit_json(out, signal.error, line_number)
            else:
                print(f"error: {signal.error.message}", file=out)
        except (ReproError, OSError) as error:
            # One bad command must not take the whole session down.  A
            # poisoned session (failed maintenance run) keeps refusing
            # queries through SessionPoisonedError, reported the same way.
            errors += 1
            if json_mode:
                _emit_json(out, ApiError.from_exception(error), line_number)
            else:
                print(f"error: {error}", file=out)
    return 1 if json_mode and errors else 0


def _read_lines(args):
    if args.script:
        with open(args.script, encoding="utf-8") as handle:
            return handle.readlines()
    return sys.stdin


@contextlib.contextmanager
def _graceful_shutdown():
    """Turn SIGTERM into KeyboardInterrupt for the duration of serving.

    The serve paths all run inside try/finally blocks whose ``finally``
    closes the backend — for a durable backend that flushes the WAL and
    writes a final snapshot, and for TCP it also closes client
    connections.  SIGINT already raises KeyboardInterrupt; routing
    SIGTERM through the same exception makes ``kill <pid>`` a graceful
    shutdown too.  Installing a handler only works on the main thread —
    elsewhere (tests driving main() from a worker) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _command_serve(args: argparse.Namespace, out) -> int:
    limits = EvaluationLimits(max_iterations=args.max_iterations)
    if args.workers is not None and args.demand:
        print("error: --workers serves full snapshots; drop --demand", file=out)
        return 1
    if args.follow is not None:
        if args.tcp is None:
            print("error: --follow replicates over TCP; add --tcp HOST:PORT", file=out)
            return 1
        if args.db or args.data_dir or args.demand:
            print(
                "error: a follower's data comes from its leader; drop "
                "--db/--data-dir/--demand",
                file=out,
            )
            return 1
    if args.async_ and args.tcp is None:
        print("error: --async is the asyncio TCP front-end; add --tcp HOST:PORT", file=out)
        return 1
    database = load_database_json(args.db) if args.db else None
    if args.tcp is not None:
        if args.demand:
            print("error: --tcp serves shared snapshots; drop --demand", file=out)
            return 1
        return _serve_over_tcp(args, database, limits, out)
    if args.workers is not None:
        backend = DatalogServer(
            _load_program(args.program),
            database,
            limits=limits,
            workers=args.workers,
            data_dir=args.data_dir,
        )
        mode = f" (server mode: {args.workers} workers, snapshot-isolated)"
        fact_count = backend.snapshot.fact_count()
    elif args.data_dir is not None:
        from repro.storage import open_session

        backend = open_session(
            _load_program(args.program),
            args.data_dir,
            database=database,
            limits=limits,
            lazy=args.demand,
        )
        mode = " (durable: write-ahead logged)"
        fact_count = backend.fact_count()
    else:
        backend = DatalogSession(
            _load_program(args.program), database, limits=limits, lazy=args.demand
        )
        mode = " (demand mode: lazy per-query slices)" if args.demand else ""
        fact_count = backend.fact_count()
    if not args.json:
        print(f"% serving {fact_count} facts{mode}", file=out)
    commands = _ServiceCommands(DatalogService(backend, demand=args.demand))
    try:
        with _graceful_shutdown():
            return _command_loop(commands, _read_lines(args), out, args.json)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0
    finally:
        backend.close()


def _serve_over_tcp(args: argparse.Namespace, database, limits, out) -> int:
    host, port = parse_address(args.tcp)
    if args.async_:
        # Same arguments, same ownership semantics, different transport:
        # an event loop instead of a thread per connection.
        from repro.live import serve_tcp_async as serve_transport
    else:
        serve_transport = serve_tcp
    follower = None
    if args.follow is not None:
        from repro.replication import FollowerServer

        follower = FollowerServer(
            _load_program(args.program),
            args.follow,
            limits=limits,
            workers=args.workers,
        )
        try:
            transport = serve_transport(
                follower, host=host, port=port, start=args.script is not None
            )
        except BaseException:
            follower.close()
            raise
    else:
        transport = serve_transport(
            _load_program(args.program),
            database=database,
            host=host,
            port=port,
            limits=limits,
            workers=args.workers,
            start=args.script is not None,
            data_dir=args.data_dir,
        )
    bound_host, bound_port = transport.address
    facts = transport.backend.snapshot.fact_count()
    role = "follower" if follower is not None else "leader"
    # The bound address must reach the operator even for port 0.  JSON
    # mode promises one machine-parsable JSON object per line, so the
    # foreground server announces it as a CLI-level "listening" envelope
    # (script+JSON mode stays silent: its stream carries only command
    # replies); text mode keeps the human banner.
    if args.json:
        if args.script is None:
            print(
                json.dumps(
                    {
                        "v": 1, "ok": True, "kind": "listening",
                        "host": bound_host, "port": bound_port,
                        "facts": facts, "role": role,
                    },
                    sort_keys=True,
                ),
                file=out,
            )
    else:
        suffix = f", following {follower.leader_address}" if follower else ""
        print(
            f"% serving {facts} facts on {bound_host}:{bound_port} "
            f"(schema v1{suffix})",
            file=out,
        )
    try:
        if args.script is not None:
            # End-to-end self-test mode: run the script through a loopback
            # client against the live TCP server.
            with DatalogClient(bound_host, bound_port) as client:
                commands = _ClientCommands(client, page_size=1024)
                return _command_loop(commands, _read_lines(args), out, args.json)
        if hasattr(out, "flush"):
            out.flush()
        with _graceful_shutdown():
            transport.serve_forever()
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0
    finally:
        # Closes listening + client sockets, then the backend; a durable
        # backend flushes its WAL and writes a final snapshot here.
        transport.close()
        if follower is not None:
            # serve_tcp was handed the follower, so it does not own it:
            # stop the replication thread and its subscription explicitly.
            follower.close()


def _command_client(args: argparse.Namespace, out) -> int:
    host, port = parse_address(args.address)
    with DatalogClient(host, port, timeout=args.timeout) as client:
        commands = _ClientCommands(client, page_size=max(1, args.page_size))
        return _command_loop(commands, _read_lines(args), out, args.json)


def _command_watch(args: argparse.Namespace, out) -> int:
    """Stream one continuous query's deltas to stdout until stopped."""
    from repro.api.types import encode_response

    host, port = parse_address(args.address)
    client = DatalogClient(host, port, timeout=args.timeout)
    delivered = 0
    try:
        with client.watch(
            args.pattern, strict=args.strict, initial=not args.no_initial
        ) as watch:
            if not args.json:
                print(
                    f"% watching {watch.pattern} "
                    f"(subscription {watch.subscription}, "
                    f"generation {watch.generation})",
                    file=out,
                )
            if hasattr(out, "flush"):
                out.flush()
            with _graceful_shutdown():
                for delta in watch:
                    if args.json:
                        print(
                            json.dumps(encode_response(delta), sort_keys=True),
                            file=out,
                        )
                    else:
                        label = "initial" if delta.initial else "delta"
                        coalesced = (
                            f", {delta.coalesced} generations coalesced"
                            if delta.coalesced
                            else ""
                        )
                        print(
                            f"% {label}: generation {delta.generation}, "
                            f"{len(delta.rows)} row(s){coalesced}",
                            file=out,
                        )
                        for row in sorted(delta.rows):
                            print("\t".join(row), file=out)
                    if hasattr(out, "flush"):
                        out.flush()
                    delivered += 1
                    if args.count is not None and delivered >= args.count:
                        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0
    finally:
        client.close()
    # The server ended the stream (shutdown); that is not a client error.
    return 0


def _command_route(args: argparse.Namespace, out) -> int:
    from repro.replication import RoutingClient

    router = RoutingClient(
        args.endpoints,
        read_your_writes=args.read_your_writes,
        timeout=args.timeout,
    )
    try:
        topology = router.refresh()
        if not args.json:
            leader = router.leader or "none"
            print(
                f"% routing over {len(topology)} endpoint(s): "
                f"leader {leader}, {len(router.followers)} follower(s)",
                file=out,
            )
        commands = _RouterCommands(router, page_size=max(1, args.page_size))
        return _command_loop(commands, _read_lines(args), out, args.json)
    finally:
        router.close()


def _command_analyze(args: argparse.Namespace, out) -> int:
    program = parse_program(_load_program(args.program))
    report = classify_finiteness(program)
    if args.json:
        payload = {
            "verdict": report.verdict.name,
            "finite": report.verdict.is_finite(),
            "strongly_safe": report.safety.strongly_safe,
            "order": report.safety.order,
            "constructive_cycles": [list(c) for c in report.safety.constructive_cycles],
            "constructive_predicates": list(report.safety.constructive_predicates),
        }
        print(json.dumps(payload, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    # A possibly-infinite verdict exits non-zero so scripts and CI can gate
    # on the static guarantee without parsing the output.
    return 0 if report.verdict.is_finite() else 1


def _command_lint(args: argparse.Namespace, out) -> int:
    from repro.analysis.diagnostics import lint_program

    source = _load_program(args.program)
    database = load_database_json(args.db) if args.db else None
    report = lint_program(source, database=database, patterns=args.query)
    if args.json:
        payload = report.to_payload()
        payload["exit_code"] = report.exit_code(strict=args.strict)
        print(json.dumps(payload, sort_keys=True), file=out)
    else:
        print(report.render(source, filename=args.program), file=out)
    return report.exit_code(strict=args.strict)


def _open_durable(args: argparse.Namespace):
    from repro.storage import open_session

    return open_session(_load_program(args.program), args.data_dir)


def _command_snapshot(args: argparse.Namespace, out) -> int:
    session = _open_durable(args)
    try:
        path = session.storage.checkpoint()
        durability = session.storage.stats()
        if args.json:
            print(json.dumps(durability, sort_keys=True), file=out)
        else:
            snap = durability["snapshot"]
            print(
                f"% snapshot written: {path}\n"
                f"% generation {durability['generation']}, "
                f"{session.fact_count()} facts, "
                f"{snap['count']} snapshot(s) retained, "
                f"{durability['wal']['segments']} WAL segment(s)",
                file=out,
            )
        return 0
    finally:
        # The forced checkpoint above is current; skip the close-time one.
        session.storage.close(final_snapshot=False)
        session.close()


def _command_restore(args: argparse.Namespace, out) -> int:
    session = _open_durable(args)
    try:
        report = session.storage.recovery
        payload = report.as_dict() if report is not None else {}
        payload["facts"] = session.fact_count()
        payload["generation"] = session.generation
        if args.out:
            database: dict = {}
            for predicate, values in session.base_facts():
                database.setdefault(predicate, []).append(
                    [str(value) for value in values]
                )
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(database, handle, sort_keys=True, indent=2)
            payload["exported"] = args.out
        if args.json:
            print(json.dumps(payload, sort_keys=True), file=out)
            return 0
        if report is None or report.cold_start:
            print("% cold start: no snapshot and no WAL tail to replay", file=out)
        else:
            source = (
                f"snapshot generation {report.snapshot_generation} "
                f"({report.snapshot_facts} facts)"
                if report.snapshot_path
                else "no snapshot"
            )
            print(
                f"% recovered from {source} + {report.replayed_batches} "
                f"replayed batch(es) ({report.replayed_facts} facts) "
                f"in {report.elapsed_seconds:.3f}s",
                file=out,
            )
            if report.dropped_batches:
                print(
                    f"% dropped {report.dropped_batches} uncommitted "
                    "batch(es) (crash mid-commit; callers were never "
                    "acknowledged)",
                    file=out,
                )
            for warning in report.warnings:
                print(f"% warning: {warning}", file=out)
        print(
            f"% model: {payload['facts']} facts at generation "
            f"{payload['generation']}",
            file=out,
        )
        if args.out:
            print(f"% base facts exported to {args.out}", file=out)
        return 0
    finally:
        session.storage.close(final_snapshot=False)
        session.close()


def _command_explain(args: argparse.Namespace, out) -> int:
    from repro.analysis.diagnostics import explain_with_diagnostics

    program = parse_program(_load_program(args.program))
    program.validate()
    print(explain_with_diagnostics(program), file=out)
    return 0


def _command_parse(args: argparse.Namespace, out) -> int:
    program = parse_program(_load_program(args.program))
    program.validate()
    print(str(program), file=out)
    print(f"% {len(program)} clauses, predicates: {', '.join(sorted(program.predicates()))}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args, out)
        if args.command == "serve":
            return _command_serve(args, out)
        if args.command == "client":
            return _command_client(args, out)
        if args.command == "watch":
            return _command_watch(args, out)
        if args.command == "route":
            return _command_route(args, out)
        if args.command == "analyze":
            return _command_analyze(args, out)
        if args.command == "lint":
            return _command_lint(args, out)
        if args.command == "snapshot":
            return _command_snapshot(args, out)
        if args.command == "restore":
            return _command_restore(args, out)
        if args.command == "explain":
            return _command_explain(args, out)
        return _command_parse(args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1
    except OSError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
