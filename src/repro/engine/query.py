"""Pattern queries over interpretations.

Definition 5 of the paper says a program expresses a query through a
distinguished ``output`` predicate.  In practice one also wants to query an
interpretation with a *pattern atom* containing variables (and even indexed
terms), e.g. ``answer(X)`` or ``proteinseq(D, P)``.  This module matches such
patterns against a computed interpretation and returns the bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.engine.bindings import Substitution
from repro.engine.evaluation import ClauseEvaluator
from repro.engine.interpretation import Interpretation
from repro.errors import UnknownPredicateError
from repro.language.atoms import Atom
from repro.language.clauses import Clause
from repro.language.parser import parse_atom
from repro.sequences import Sequence


@dataclass
class QueryResult:
    """The answers to a pattern query.

    ``substitutions`` holds one substitution per answer; ``rows`` holds the
    matched fact tuples.  Helper accessors return plain strings for
    convenience in examples and tests.
    """

    pattern: Atom
    substitutions: List[Substitution]
    rows: List[Tuple[Sequence, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __contains__(self, row) -> bool:
        if isinstance(row, (str, Sequence)):
            target = (Sequence(str(row)),)
        else:
            target = tuple(Sequence(str(value)) for value in row)
        return target in set(self.rows)

    def texts(self) -> List[Tuple[str, ...]]:
        """All answer rows as tuples of plain strings, sorted."""
        return sorted(tuple(value.text for value in row) for row in self.rows)

    def values(self, variable: str) -> List[str]:
        """The distinct bindings of one variable, as sorted strings."""
        seen = set()
        for substitution in self.substitutions:
            if substitution.binds_sequence(variable):
                seen.add(substitution.sequence(variable).text)
        return sorted(seen)

    def is_empty(self) -> bool:
        return not self.rows


def evaluate_query(
    interpretation: Interpretation,
    pattern: Union[str, Atom],
    strict: bool = False,
) -> QueryResult:
    """Match a pattern atom against an interpretation.

    Parameters
    ----------
    interpretation:
        A computed interpretation (typically a least fixpoint).
    pattern:
        An atom such as ``answer(X)`` / ``proteinseq(D, P)`` -- either an
        :class:`Atom` or its textual form.
    strict:
        When True, querying a predicate with no facts raises
        :class:`UnknownPredicateError` instead of returning an empty result.
    """
    atom = parse_atom(pattern) if isinstance(pattern, str) else pattern
    relation = interpretation.relation(atom.predicate)
    if relation is None:
        if strict:
            raise UnknownPredicateError(
                f"predicate {atom.predicate!r} has no facts in the interpretation"
            )
        return QueryResult(pattern=atom, substitutions=[], rows=[])

    # Reuse the clause evaluator's matching machinery by evaluating the
    # pattern as if it were the single body atom of a clause.
    dummy_clause = Clause(Atom("query_result", atom.args), [atom])
    evaluator = ClauseEvaluator(dummy_clause)
    substitutions: List[Substitution] = []
    rows: List[Tuple[Sequence, ...]] = []
    seen = set()
    for substitution in evaluator._body_solutions(interpretation, None, -1):
        values = substitution.evaluate_atom(atom)
        if values is None:
            continue
        _, row = values
        key = (row, frozenset(substitution.sequence_bindings.items()),
               frozenset(substitution.index_bindings.items()))
        if key in seen:
            continue
        seen.add(key)
        substitutions.append(substitution)
        rows.append(row)
    return QueryResult(pattern=atom, substitutions=substitutions, rows=rows)


def output_relation(interpretation: Interpretation, predicate: str = "output") -> List[str]:
    """The unary ``output`` relation as plain strings (Definition 5 queries)."""
    return sorted(row[0].text for row in interpretation.tuples(predicate))
