"""Pattern queries over interpretations.

Definition 5 of the paper says a program expresses a query through a
distinguished ``output`` predicate.  In practice one also wants to query an
interpretation with a *pattern atom* containing variables (and even indexed
terms), e.g. ``answer(X)`` or ``proteinseq(D, P)``.  This module matches such
patterns against a computed interpretation and returns the bindings.

Patterns are served by :class:`PreparedQuery`: the pattern atom is compiled
once into a single-atom join plan through :mod:`repro.engine.planner`, so
argument positions bound by constants become index lookups against the
relation's composite hash indexes instead of full scans, and the parse and
compile work is amortised over repeated executions (the serving layer in
:mod:`repro.engine.session` keeps prepared patterns in an LRU cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Collection,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.engine.bindings import Substitution
from repro.engine.interpretation import Interpretation
from repro.engine.planner import PlanExecutor, compile_clause
from repro.errors import UnknownPredicateError
from repro.language.atoms import Atom
from repro.language.clauses import Clause
from repro.language.parser import parse_atom
from repro.sequences import Sequence


@dataclass(frozen=True)
class ResultWindow:
    """One page of a :class:`QueryResult` (the unit the network API ships).

    Rows and witness substitutions are windowed *independently* — a row can
    have several witnesses, so the two lists advance at different rates.
    ``complete`` is True when both windows reached the end of the result.
    """

    rows: List[Tuple[Sequence, ...]]
    witnesses: List[Substitution]
    row_offset: int
    witness_offset: int
    total_rows: int
    total_witnesses: int
    complete: bool


@dataclass
class QueryResult:
    """The answers to a pattern query.

    ``rows`` holds one tuple per *distinct* answer (matched fact tuple);
    ``substitutions`` holds every distinct witness substitution.  A row can
    have several witnesses (e.g. the pattern ``suffix(X[N:end])`` matches
    one suffix fact for many ``(X, N)`` pairs), so the two lists are not
    parallel: ``len(result)`` counts answers, never witnesses.  Helper
    accessors return plain strings for convenience in examples and tests.
    """

    pattern: Atom
    substitutions: List[Substitution]
    rows: List[Tuple[Sequence, ...]]
    # Lazily-built membership set so repeated ``in`` checks are O(1)
    # amortised instead of rebuilding a set per call.  The cache remembers
    # how many rows it covers; results are not meant to be mutated, but an
    # appended row is still picked up on the next check.
    _row_set: Optional[FrozenSet[Tuple[Sequence, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _row_set_count: int = field(default=-1, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __contains__(self, row) -> bool:
        if isinstance(row, (str, Sequence)):
            target = (Sequence(str(row)),)
        else:
            target = tuple(Sequence(str(value)) for value in row)
        if self._row_set is None or self._row_set_count != len(self.rows):
            self._row_set = frozenset(self.rows)
            self._row_set_count = len(self.rows)
        return target in self._row_set

    def texts(self) -> List[Tuple[str, ...]]:
        """All distinct answer rows as tuples of plain strings, sorted."""
        return sorted(tuple(value.text for value in row) for row in self.rows)

    def values(self, variable: str) -> List[str]:
        """The distinct bindings of one variable, as sorted strings."""
        seen = set()
        for substitution in self.substitutions:
            if substitution.binds_sequence(variable):
                seen.add(substitution.sequence(variable).text)
        return sorted(seen)

    def is_empty(self) -> bool:
        return not self.rows

    def window(
        self,
        row_offset: int = 0,
        witness_offset: int = 0,
        limit: Optional[int] = None,
        witnesses: bool = True,
    ) -> ResultWindow:
        """Slice one page out of the result (cursor-based pagination).

        ``limit`` bounds rows and witnesses separately (a page carries at
        most ``limit`` of each); ``None`` means everything from the offsets
        on.  With ``witnesses=False`` the witness window is always empty and
        only the row window decides completeness — the mode for callers that
        ship answers, not bindings.
        """
        row_offset = max(0, row_offset)
        witness_offset = max(0, witness_offset)
        stop = None if limit is None else row_offset + max(0, limit)
        rows = self.rows[row_offset:stop]
        total_witnesses = len(self.substitutions) if witnesses else 0
        if witnesses:
            stop = None if limit is None else witness_offset + max(0, limit)
            witness_page = self.substitutions[witness_offset:stop]
        else:
            witness_page = []
        complete = row_offset + len(rows) >= len(self.rows) and (
            witness_offset + len(witness_page) >= total_witnesses
        )
        return ResultWindow(
            rows=rows,
            witnesses=witness_page,
            row_offset=row_offset,
            witness_offset=witness_offset,
            total_rows=len(self.rows),
            total_witnesses=total_witnesses,
            complete=complete,
        )


def canonical_pattern(pattern: Union[str, Atom]) -> Tuple[Atom, str]:
    """Parse a pattern (if textual) and return it with its canonical key.

    Plan caches must key patterns by the canonical rendering of the parsed
    atom — raw strings would give ``"out(X)"``, ``"out( X )"`` and the
    equivalent :class:`~repro.language.atoms.Atom` three separate cache
    entries, compiling three identical plans.
    """
    atom = parse_atom(pattern) if isinstance(pattern, str) else pattern
    return atom, str(atom)


class PreparedQuery:
    """A pattern atom compiled once into an index-aware scan plan.

    The pattern is wrapped into the single-body-atom clause
    ``query_result(args) :- pattern.`` and compiled with
    :func:`repro.engine.planner.compile_clause`; executing the plan with
    :meth:`PlanExecutor.solutions` then shares the exact matching semantics
    of clause evaluation (Section 3.2).  Argument positions whose terms are
    constants are statically bound, so every execution consults the
    relation's composite hash index over those columns instead of scanning
    all rows — the point of preparing a query once and serving it many
    times.
    """

    __slots__ = ("atom", "plan", "_executor")

    def __init__(self, pattern: Union[str, Atom]):
        self.atom = parse_atom(pattern) if isinstance(pattern, str) else pattern
        clause = Clause(Atom("query_result", self.atom.args), [self.atom])
        self.plan = compile_clause(clause)
        self._executor = PlanExecutor(self.plan)

    def run(
        self,
        interpretation: Interpretation,
        strict: bool = False,
        known_predicates: Optional[Collection[str]] = None,
    ) -> QueryResult:
        """Execute the prepared pattern against an interpretation.

        See :func:`evaluate_query` for the meaning of ``strict`` and
        ``known_predicates``.
        """
        atom = self.atom
        if interpretation.relation(atom.predicate) is None:
            if strict and (
                known_predicates is None or atom.predicate not in known_predicates
            ):
                raise UnknownPredicateError(
                    f"predicate {atom.predicate!r} is not defined by any rule "
                    "or fact (unknown predicate; pass strict=False to treat "
                    "it as empty)"
                )
            return QueryResult(pattern=atom, substitutions=[], rows=[])

        substitutions: List[Substitution] = []
        rows: List[Tuple[Sequence, ...]] = []
        row_seen: Set[Tuple[Sequence, ...]] = set()
        witness_seen = set()
        for substitution in self._executor.solutions(interpretation):
            values = substitution.evaluate_atom(atom)
            if values is None:
                continue
            _, row = values
            # Rows are deduplicated by the matched fact alone: witnesses
            # differing only in their variable bindings are the same answer.
            if row not in row_seen:
                row_seen.add(row)
                rows.append(row)
            witness_key = (
                frozenset(substitution.sequence_bindings.items()),
                frozenset(substitution.index_bindings.items()),
            )
            if witness_key not in witness_seen:
                witness_seen.add(witness_key)
                substitutions.append(substitution)
        return QueryResult(pattern=atom, substitutions=substitutions, rows=rows)


def evaluate_query(
    interpretation: Interpretation,
    pattern: Union[str, Atom],
    strict: bool = False,
    known_predicates: Optional[Collection[str]] = None,
) -> QueryResult:
    """Match a pattern atom against an interpretation.

    Parameters
    ----------
    interpretation:
        A computed interpretation (typically a least fixpoint).
    pattern:
        An atom such as ``answer(X)`` / ``proteinseq(D, P)`` -- either an
        :class:`Atom` or its textual form.
    strict:
        When True, querying a predicate that is *unknown* — no facts in the
        interpretation and not listed in ``known_predicates`` — raises
        :class:`UnknownPredicateError` instead of returning an empty result.
    known_predicates:
        The predicates the caller knows to exist (typically the program's
        predicates plus the base relations).  A known predicate that simply
        derived no facts yields an empty result even under ``strict``; only
        a predicate outside this set (a likely typo) raises.  ``None``
        preserves the historical behaviour of treating every factless
        predicate as unknown.

    One-shot callers get a freshly prepared plan per call; repeated callers
    should prepare once (:class:`PreparedQuery`) or go through a
    :class:`~repro.engine.session.DatalogSession`, which caches prepared
    patterns.
    """
    return PreparedQuery(pattern).run(
        interpretation, strict=strict, known_predicates=known_predicates
    )


def known_predicates(
    program_predicates: Collection[str], interpretation: Interpretation
) -> Set[str]:
    """The predicates strict queries treat as *known*.

    A predicate is known when the program mentions it (even if it derived
    nothing) or when the interpretation holds facts for it (base relations
    the program never names).  Anything else is presumed a typo.
    """
    known = set(program_predicates)
    known.update(interpretation.predicates())
    return known


def output_relation(interpretation: Interpretation, predicate: str = "output") -> List[str]:
    """The unary ``output`` relation as plain strings (Definition 5 queries)."""
    return sorted(row[0].text for row in interpretation.tuples(predicate))
