"""Clause evaluation: generating the substitutions that fire a rule.

Definition 4 of the paper defines ``T_{P,db}(I)`` as the set of heads
``theta(head(gamma))`` over all clauses ``gamma`` and all substitutions
``theta`` *based on the extended active domain of I* that are defined at
``gamma`` and satisfy ``theta(body(gamma)) ⊆ I``.

Enumerating every substitution over the domain would be correct but
hopelessly slow, so :class:`ClauseEvaluator` performs a backtracking join:

1. body literals are processed in a greedy order -- literals whose variables
   are already bound act as filters, equalities that can bind a bare variable
   do so, and predicate atoms are matched against the interpretation using
   the per-column indexes of the fact store;
2. matching an atom argument against a fact value may *solve* for unbound
   variables: a bare variable is bound directly, and an indexed term
   ``X[n1:n2]`` enumerates the (finitely many) index values -- and, when its
   base is unbound, the (finitely many) domain sequences containing the
   value -- that make the term equal to the fact value;
3. any clause variable still unbound after the body is satisfied (an
   *unguarded* variable) is enumerated over the extended active domain,
   exactly as the declarative semantics prescribes;
4. finally the head is evaluated; substitutions at which the head is
   undefined are discarded.

The result is exactly the set of ground heads of Definition 4, computed
without materialising the full substitution space.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine.bindings import Substitution, TransducerRegistry, UnboundVariableError
from repro.engine.interpretation import Fact, Interpretation
from repro.errors import EvaluationError
from repro.language.atoms import Atom, BodyLiteral, Comparison, TrueLiteral
from repro.language.clauses import Clause
from repro.language.terms import (
    ConstantTerm,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
)
from repro.sequences import ExtendedDomain, Sequence


def _term_is_evaluable(term: SequenceTerm, substitution: Substitution) -> bool:
    """True if every variable of the term is bound by the substitution."""
    return substitution.covers(term.sequence_variables(), term.index_variables())


def _literal_is_evaluable(literal: BodyLiteral, substitution: Substitution) -> bool:
    return substitution.covers(
        literal.sequence_variables(), literal.index_variables()
    )


# ----------------------------------------------------------------------
# Shared matching machinery
#
# These module-level functions implement the semantics of matching a term of
# a body atom against a fact value (Section 3.2).  They are used both by the
# backtracking :class:`ClauseEvaluator` below (the naive reference) and by
# the compiled plan executor in :mod:`repro.engine.planner`, so the two
# evaluation paths cannot drift apart semantically.
# ----------------------------------------------------------------------
def match_args(
    args: Tuple[SequenceTerm, ...],
    row: Tuple[Sequence, ...],
    position: int,
    substitution: Substitution,
    domain: ExtendedDomain,
) -> Iterator[Substitution]:
    """Yield extensions of ``substitution`` matching each arg to each value."""
    if position == len(args):
        yield substitution
        return
    for extended in match_term(args[position], row[position], substitution, domain):
        yield from match_args(args, row, position + 1, extended, domain)


def match_term(
    term: SequenceTerm,
    value: Sequence,
    substitution: Substitution,
    domain: ExtendedDomain,
) -> Iterator[Substitution]:
    """Yield extensions of ``substitution`` under which ``term`` equals ``value``."""
    if isinstance(term, ConstantTerm):
        if term.value == value:
            yield substitution
        return
    if isinstance(term, SequenceVariable):
        if substitution.binds_sequence(term.name):
            if substitution.sequence(term.name) == value:
                yield substitution
        elif value in domain:
            yield substitution.bind_sequence(term.name, value)
        return
    if isinstance(term, IndexedTerm):
        yield from match_indexed(term, value, substitution, domain)
        return
    raise EvaluationError(
        f"constructive term {term} found in a rule body; this should have "
        "been rejected at clause construction"
    )


def match_indexed(
    term: IndexedTerm,
    value: Sequence,
    substitution: Substitution,
    domain: ExtendedDomain,
) -> Iterator[Substitution]:
    # Candidate values for the base of the indexed term.
    base = term.base
    if isinstance(base, ConstantTerm):
        base_candidates: Iterable[Tuple[Sequence, Substitution]] = [
            (base.value, substitution)
        ]
    else:
        assert isinstance(base, SequenceVariable)
        if substitution.binds_sequence(base.name):
            base_candidates = [(substitution.sequence(base.name), substitution)]
        else:
            # The base is unbound: it must be a domain sequence having
            # `value` as a contiguous subsequence.
            base_candidates = (
                (candidate, substitution.bind_sequence(base.name, candidate))
                for candidate in domain.sequences()
                if value.is_subsequence_of(candidate)
            )

    for base_value, base_substitution in base_candidates:
        yield from match_indexes(term, base_value, value, base_substitution, domain)


def match_indexes(
    term: IndexedTerm,
    base_value: Sequence,
    value: Sequence,
    substitution: Substitution,
    domain: ExtendedDomain,
) -> Iterator[Substitution]:
    unbound = sorted(
        name
        for name in (term.lo.index_variables() | term.hi.index_variables())
        if not substitution.binds_index(name)
    )
    end_value = len(base_value)
    if not unbound:
        try:
            lo = substitution.evaluate_index(term.lo, end_value)
            hi = substitution.evaluate_index(term.hi, end_value)
        except UnboundVariableError:
            return
        if base_value.subsequence(lo, hi) == value:
            yield substitution
        return

    # Enumerate assignments to the unbound index variables.  Semantically
    # they range over the integer part of the extended domain, but any
    # value beyond len(base) + 1 makes this indexed term undefined (and
    # hence the whole substitution undefined at the clause), so the
    # enumeration can safely be clipped to the base sequence.
    integer_range = range(0, min(len(base_value) + 2, domain.max_length + 2))
    for assignment in product(integer_range, repeat=len(unbound)):
        candidate = substitution
        for name, integer in zip(unbound, assignment):
            candidate = candidate.bind_index(name, integer)
        lo = candidate.evaluate_index(term.lo, end_value)
        hi = candidate.evaluate_index(term.hi, end_value)
        if base_value.subsequence(lo, hi) == value:
            yield candidate


def emit_heads(
    head: Atom,
    head_sequence_vars: Iterable[str],
    head_index_vars: Iterable[str],
    substitution: Substitution,
    domain: ExtendedDomain,
    transducers: Optional[TransducerRegistry],
) -> Iterator[Fact]:
    """Enumerate unbound head variables over the domain and evaluate the head.

    Only variables occurring in the head can influence the derived fact;
    enumerating unbound body-only variables would merely produce duplicate
    heads (the domain is never empty, so a witness always exists).
    """
    unbound_sequences = sorted(
        name for name in head_sequence_vars if not substitution.binds_sequence(name)
    )
    unbound_indexes = sorted(
        name for name in head_index_vars if not substitution.binds_index(name)
    )

    if not unbound_sequences and not unbound_indexes:
        fact = evaluate_head(head, substitution, transducers)
        if fact is not None:
            yield fact
        return

    sequences = list(domain.sequences())
    integers = list(domain.integers())
    sequence_choices = [sequences] * len(unbound_sequences)
    integer_choices = [integers] * len(unbound_indexes)
    for sequence_assignment in product(*sequence_choices) if sequence_choices else [()]:
        candidate = substitution
        for name, value in zip(unbound_sequences, sequence_assignment):
            candidate = candidate.bind_sequence(name, value)
        for integer_assignment in product(*integer_choices) if integer_choices else [()]:
            final = candidate
            for name, value in zip(unbound_indexes, integer_assignment):
                final = final.bind_index(name, value)
            fact = evaluate_head(head, final, transducers)
            if fact is not None:
                yield fact


def evaluate_head(
    head: Atom,
    substitution: Substitution,
    transducers: Optional[TransducerRegistry],
) -> Optional[Fact]:
    try:
        return substitution.evaluate_atom(head, transducers)
    except UnboundVariableError:
        # Should not happen: all clause variables are bound at this point.
        return None


class ClauseEvaluator:
    """Evaluates one clause against an interpretation.

    Parameters
    ----------
    clause:
        The clause to evaluate.
    transducers:
        Optional registry used to evaluate transducer terms in the head
        (Transducer Datalog).
    """

    def __init__(
        self,
        clause: Clause,
        transducers: Optional[TransducerRegistry] = None,
    ):
        self.clause = clause
        self.transducers = transducers
        self._head_sequence_vars = clause.head.sequence_variables()
        self._head_index_vars = clause.head.index_variables()
        self._all_sequence_vars = clause.sequence_variables()
        self._all_index_vars = clause.index_variables()
        self._body_atoms = clause.body_atoms()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def derive(
        self,
        interpretation: Interpretation,
        delta: Optional[Interpretation] = None,
    ) -> Iterator[Fact]:
        """Yield every ground head fact derivable from the interpretation.

        When ``delta`` is given, only derivations in which at least one body
        atom is matched against a ``delta`` fact are produced (the semi-naive
        restriction).  Duplicate facts may be yielded; the caller
        deduplicates by inserting into an interpretation.
        """
        domain = interpretation.domain
        if delta is None or not self._body_atoms:
            for substitution in self._body_solutions(interpretation, None, -1):
                yield from self._emit_heads(substitution, domain)
            return
        # Semi-naive: require the i-th atom to match a delta fact, for each i.
        # The same derivation can be produced for several i; deduplication
        # happens on insertion.
        for position in range(len(self._body_atoms)):
            for substitution in self._body_solutions(interpretation, delta, position):
                yield from self._emit_heads(substitution, domain)

    # ------------------------------------------------------------------
    # Body search
    # ------------------------------------------------------------------
    def _body_solutions(
        self,
        interpretation: Interpretation,
        delta: Optional[Interpretation],
        delta_position: int,
    ) -> Iterator[Substitution]:
        literals: List[Tuple[BodyLiteral, bool]] = []
        atom_index = 0
        for literal in self.clause.body:
            if isinstance(literal, TrueLiteral):
                continue
            use_delta = False
            if isinstance(literal, Atom):
                use_delta = atom_index == delta_position
                atom_index += 1
            literals.append((literal, use_delta))
        yield from self._solve(literals, Substitution(), interpretation, delta)

    def _solve(
        self,
        literals: List[Tuple[BodyLiteral, bool]],
        substitution: Substitution,
        interpretation: Interpretation,
        delta: Optional[Interpretation],
    ) -> Iterator[Substitution]:
        if not literals:
            yield substitution
            return

        index = self._choose_literal(literals, substitution)
        literal, use_delta = literals[index]
        rest = literals[:index] + literals[index + 1:]

        if isinstance(literal, Comparison):
            yield from self._solve_comparison(
                literal, rest, substitution, interpretation, delta
            )
            return

        assert isinstance(literal, Atom)
        source = delta if use_delta and delta is not None else interpretation
        for extended in self._match_atom(literal, source, substitution, interpretation.domain):
            yield from self._solve(rest, extended, interpretation, delta)

    def _choose_literal(
        self,
        literals: List[Tuple[BodyLiteral, bool]],
        substitution: Substitution,
    ) -> int:
        """Pick the next literal to process.

        Preference order: a fully-bound literal (cheap filter), then an
        equality that can directly bind a bare variable, then the predicate
        atom with the most bound argument terms, then anything.
        """
        best_atom = -1
        best_atom_score = -1
        binder = -1
        for position, (literal, _) in enumerate(literals):
            if _literal_is_evaluable(literal, substitution):
                return position
            if isinstance(literal, Comparison) and binder < 0:
                if self._binding_side(literal, substitution) is not None:
                    binder = position
            if isinstance(literal, Atom):
                score = sum(
                    1 for arg in literal.args if _term_is_evaluable(arg, substitution)
                )
                if score > best_atom_score:
                    best_atom_score = score
                    best_atom = position
        if best_atom >= 0:
            return best_atom
        if binder >= 0:
            return binder
        return 0

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    @staticmethod
    def _binding_side(
        comparison: Comparison, substitution: Substitution
    ) -> Optional[Tuple[str, SequenceTerm]]:
        """If the comparison is an equality with one evaluable side and the
        other a bare unbound variable, return ``(variable_name, other_side)``."""
        if not comparison.is_equality():
            return None
        left, right = comparison.left, comparison.right
        if (
            isinstance(left, SequenceVariable)
            and not substitution.binds_sequence(left.name)
            and _term_is_evaluable(right, substitution)
        ):
            return (left.name, right)
        if (
            isinstance(right, SequenceVariable)
            and not substitution.binds_sequence(right.name)
            and _term_is_evaluable(left, substitution)
        ):
            return (right.name, left)
        return None

    def _solve_comparison(
        self,
        comparison: Comparison,
        rest: List[Tuple[BodyLiteral, bool]],
        substitution: Substitution,
        interpretation: Interpretation,
        delta: Optional[Interpretation],
    ) -> Iterator[Substitution]:
        domain = interpretation.domain
        if _literal_is_evaluable(comparison, substitution):
            if substitution.evaluate_comparison(comparison):
                yield from self._solve(rest, substitution, interpretation, delta)
            return

        binding = self._binding_side(comparison, substitution)
        if binding is not None:
            name, other = binding
            value = substitution.evaluate_sequence(other)
            if value is not None and value in domain:
                extended = substitution.bind_sequence(name, value)
                yield from self._solve(rest, extended, interpretation, delta)
            return

        # General case: enumerate one unbound variable of the comparison over
        # the domain and retry (active-domain semantics).
        for name in sorted(comparison.sequence_variables()):
            if not substitution.binds_sequence(name):
                for value in domain.sequences():
                    extended = substitution.bind_sequence(name, value)
                    yield from self._solve_comparison(
                        comparison, rest, extended, interpretation, delta
                    )
                return
        for name in sorted(comparison.index_variables()):
            if not substitution.binds_index(name):
                for value in domain.integers():
                    extended = substitution.bind_index(name, value)
                    yield from self._solve_comparison(
                        comparison, rest, extended, interpretation, delta
                    )
                return

    # ------------------------------------------------------------------
    # Atom matching
    # ------------------------------------------------------------------
    def _match_atom(
        self,
        atom: Atom,
        source: Interpretation,
        substitution: Substitution,
        domain: ExtendedDomain,
    ) -> Iterator[Substitution]:
        relation = source.relation(atom.predicate)
        if relation is None or relation.arity != atom.arity:
            return

        # Use fully-evaluable arguments as index lookups.
        column_bindings: Dict[int, Sequence] = {}
        for column, arg in enumerate(atom.args):
            if _term_is_evaluable(arg, substitution):
                value = substitution.evaluate_sequence(arg)
                if value is None:
                    return  # undefined term: no extension can satisfy the atom
                column_bindings[column] = value

        for row in relation.lookup(column_bindings):
            yield from match_args(atom.args, row, 0, substitution, domain)

    # ------------------------------------------------------------------
    # Head emission
    # ------------------------------------------------------------------
    def _emit_heads(
        self, substitution: Substitution, domain: ExtendedDomain
    ) -> Iterator[Fact]:
        """Enumerate unbound clause variables over the domain and evaluate the head."""
        yield from emit_heads(
            self.clause.head,
            self._head_sequence_vars,
            self._head_index_vars,
            substitution,
            domain,
            self.transducers,
        )
