"""Resource limits for fixpoint evaluation.

Theorem 2 of the paper shows that it is undecidable whether a Sequence
Datalog program has a finite least fixpoint, and Examples 1.5/1.6 exhibit
natural programs whose fixpoint is infinite.  The engine therefore evaluates
under explicit limits; hitting a limit raises
:class:`~repro.errors.FixpointNotReached` carrying the partial
interpretation, so callers (and tests) can distinguish "reached the least
fixpoint" from "gave up".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FixpointNotReached


@dataclass(frozen=True)
class EvaluationLimits:
    """Limits applied during bottom-up evaluation.

    Attributes
    ----------
    max_iterations:
        Maximum number of evaluation rounds per run.  The initial database
        (or delta) load counts as round 1 and every subsequent sweep /
        ``T``-operator application as one further round, so a converging
        run's reported ``iterations`` never exceeds this bound.  (An earlier
        version checked only the sweep counter, silently permitting
        ``max_iterations + 1`` rounds.)
    max_facts:
        Maximum number of facts in the interpretation.
    max_domain_size:
        Maximum number of sequences in the extended active domain.
    max_sequence_length:
        Maximum length of any sequence created during evaluation; ``None``
        disables the check.  This is the most effective guard against
        constructive recursion that grows sequences without bound
        (Example 1.6).
    """

    max_iterations: int = 200
    max_facts: int = 2_000_000
    max_domain_size: int = 1_000_000
    max_sequence_length: Optional[int] = 100_000

    def check_iteration(self, iteration: int, partial=None) -> None:
        if iteration > self.max_iterations:
            raise FixpointNotReached(
                f"fixpoint not reached after {self.max_iterations} iterations",
                partial=partial,
                iterations=iteration,
            )

    def check_interpretation(self, interpretation, iteration: int) -> None:
        if interpretation.fact_count() > self.max_facts:
            raise FixpointNotReached(
                f"interpretation exceeded {self.max_facts} facts",
                partial=interpretation,
                iterations=iteration,
            )
        if len(interpretation.domain) > self.max_domain_size:
            raise FixpointNotReached(
                f"extended active domain exceeded {self.max_domain_size} sequences",
                partial=interpretation,
                iterations=iteration,
            )

    def check_sequence_length(self, length: int, interpretation=None, iteration: int = 0) -> None:
        if self.max_sequence_length is not None and length > self.max_sequence_length:
            raise FixpointNotReached(
                f"a derived sequence exceeded the length limit "
                f"({length} > {self.max_sequence_length})",
                partial=interpretation,
                iterations=iteration,
            )


#: Limits suitable for unit tests: small and fast to trip.
STRICT_LIMITS = EvaluationLimits(
    max_iterations=50,
    max_facts=50_000,
    max_domain_size=50_000,
    max_sequence_length=2_000,
)

#: Default limits used by the public engines.
DEFAULT_LIMITS = EvaluationLimits()
