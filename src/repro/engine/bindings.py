"""Substitutions based on a domain (Section 3.2 of the paper).

A substitution maps sequence variables to sequences and index variables to
integers.  Extended to terms it becomes a *partial* function: an indexed term
``s[n1:n2]`` whose indexes fall outside ``1 <= n1 <= n2+1 <= len(s)+1`` is
*undefined*, and an atom or clause containing an undefined term is itself
undefined -- the substitution simply does not contribute to the fixpoint.

This module also evaluates transducer terms (Section 7.1) given a registry of
transducer implementations, so the same machinery serves both Sequence
Datalog and Transducer Datalog.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.language.atoms import Atom, Comparison
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexTerm,
    IndexVariable,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
    TransducerTerm,
)
from repro.sequences import Sequence

#: A transducer registry maps a transducer name to a callable taking
#: ``Sequence`` arguments and returning a ``Sequence``.
TransducerRegistry = Mapping[str, Callable[..., Sequence]]


class UnboundVariableError(EvaluationError):
    """A term was evaluated under a substitution that does not bind all its
    variables.  This is an internal signal used by the matcher, not a user
    error."""

    def __init__(self, name: str, kind: str):
        super().__init__(f"unbound {kind} variable {name!r}")
        self.name = name
        self.kind = kind


class Substitution:
    """An immutable mapping from variables to domain elements.

    Sequence variables map to :class:`~repro.sequences.Sequence` objects and
    index variables map to integers.  ``bind_sequence`` / ``bind_index``
    return extended copies, leaving the original untouched, which makes the
    backtracking search of the clause evaluator straightforward.
    """

    __slots__ = ("_sequences", "_indexes")

    def __init__(
        self,
        sequences: Optional[Dict[str, Sequence]] = None,
        indexes: Optional[Dict[str, int]] = None,
    ):
        self._sequences: Dict[str, Sequence] = dict(sequences or {})
        self._indexes: Dict[str, int] = dict(indexes or {})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sequence_bindings(self) -> Dict[str, Sequence]:
        return dict(self._sequences)

    @property
    def index_bindings(self) -> Dict[str, int]:
        return dict(self._indexes)

    def binds_sequence(self, name: str) -> bool:
        return name in self._sequences

    def binds_index(self, name: str) -> bool:
        return name in self._indexes

    def sequence(self, name: str) -> Sequence:
        try:
            return self._sequences[name]
        except KeyError:
            raise UnboundVariableError(name, "sequence") from None

    def index(self, name: str) -> int:
        try:
            return self._indexes[name]
        except KeyError:
            raise UnboundVariableError(name, "index") from None

    def covers(self, sequence_vars: Iterable[str], index_vars: Iterable[str]) -> bool:
        """True if every listed variable is bound."""
        return all(name in self._sequences for name in sequence_vars) and all(
            name in self._indexes for name in index_vars
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return (
            other._sequences == self._sequences and other._indexes == self._indexes
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._sequences.items()),
                frozenset(self._indexes.items()),
            )
        )

    def __repr__(self) -> str:
        sequences = ", ".join(
            f"{name}={value.text!r}" for name, value in sorted(self._sequences.items())
        )
        indexes = ", ".join(
            f"{name}={value}" for name, value in sorted(self._indexes.items())
        )
        inner = "; ".join(part for part in (sequences, indexes) if part)
        return f"Substitution({inner})"

    # ------------------------------------------------------------------
    # Extension
    # ------------------------------------------------------------------
    def bind_sequence(self, name: str, value: Sequence) -> Substitution:
        """Return a copy with ``name`` bound to ``value``."""
        extended = Substitution(self._sequences, self._indexes)
        extended._sequences[name] = value
        return extended

    def bind_index(self, name: str, value: int) -> Substitution:
        """Return a copy with ``name`` bound to integer ``value``."""
        extended = Substitution(self._sequences, self._indexes)
        extended._indexes[name] = value
        return extended

    # ------------------------------------------------------------------
    # Term evaluation (Section 3.2)
    # ------------------------------------------------------------------
    def evaluate_index(self, term: IndexTerm, end_value: Optional[int]) -> int:
        """Evaluate an index term.

        ``end_value`` is the length of the enclosing sequence: the paper
        defines ``theta(end) = len(theta(S))`` in the context of the indexed
        term ``S[n:end]``.  Raises :class:`UnboundVariableError` if an index
        variable is unbound.
        """
        if isinstance(term, IndexConstant):
            return term.value
        if isinstance(term, IndexVariable):
            return self.index(term.name)
        if isinstance(term, End):
            if end_value is None:
                raise EvaluationError("'end' used outside of an indexed term")
            return end_value
        if isinstance(term, IndexSum):
            left = self.evaluate_index(term.left, end_value)
            right = self.evaluate_index(term.right, end_value)
            return left + right if term.operator == "+" else left - right
        raise EvaluationError(f"unknown index term {term!r}")

    def evaluate_sequence(
        self,
        term: SequenceTerm,
        transducers: Optional[TransducerRegistry] = None,
    ) -> Optional[Sequence]:
        """Evaluate a sequence term.

        Returns the resulting :class:`Sequence`, or ``None`` when the term is
        *undefined* under this substitution (an indexed term out of range).
        Raises :class:`UnboundVariableError` when a variable is unbound and
        :class:`EvaluationError` when a transducer term is used without a
        registry entry.
        """
        if isinstance(term, ConstantTerm):
            return term.value
        if isinstance(term, SequenceVariable):
            return self.sequence(term.name)
        if isinstance(term, IndexedTerm):
            base = self.evaluate_sequence(term.base, transducers)
            if base is None:
                return None
            end_value = len(base)
            lo = self.evaluate_index(term.lo, end_value)
            hi = self.evaluate_index(term.hi, end_value)
            return base.subsequence(lo, hi)
        if isinstance(term, ConcatTerm):
            parts = []
            for part in term.parts:
                value = self.evaluate_sequence(part, transducers)
                if value is None:
                    return None
                parts.append(value.text)
            return Sequence("".join(parts))
        if isinstance(term, TransducerTerm):
            if transducers is None or term.name not in transducers:
                raise EvaluationError(
                    f"no transducer registered under the name {term.name!r}"
                )
            args = []
            for arg in term.args:
                value = self.evaluate_sequence(arg, transducers)
                if value is None:
                    return None
                args.append(value)
            return transducers[term.name](*args)
        raise EvaluationError(f"unknown sequence term {term!r}")

    def evaluate_atom(
        self,
        atom: Atom,
        transducers: Optional[TransducerRegistry] = None,
    ) -> Optional[Tuple[str, Tuple[Sequence, ...]]]:
        """Evaluate an atom to a ground ``(predicate, values)`` pair.

        Returns ``None`` if the substitution is undefined at the atom.
        """
        values = []
        for arg in atom.args:
            value = self.evaluate_sequence(arg, transducers)
            if value is None:
                return None
            values.append(value)
        return (atom.predicate, tuple(values))

    def evaluate_comparison(self, comparison: Comparison) -> Optional[bool]:
        """Evaluate a comparison; ``None`` means the substitution is undefined
        at one of its terms (the comparison then does not hold)."""
        left = self.evaluate_sequence(comparison.left)
        right = self.evaluate_sequence(comparison.right)
        if left is None or right is None:
            return None
        if comparison.is_equality():
            return left == right
        return left != right
