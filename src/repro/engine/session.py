"""Incremental, index-backed query-serving sessions.

A :class:`DatalogSession` turns the batch evaluator into a serving engine:
it keeps a materialised least fixpoint resident and supports

* **incremental maintenance** — :meth:`DatalogSession.add_facts` inserts new
  base facts and resumes the compiled semi-naive evaluation from the current
  model instead of recomputing it from scratch.  The per-plan relation
  version counters of :class:`~repro.engine.fixpoint.CompiledFixpoint`
  survive between calls, so only plans whose body relations actually gained
  rows re-fire, joined through zero-copy
  :class:`~repro.database.relation.RelationDelta` views.  Sequence Datalog
  is monotone, which makes this exact: the resumed iteration converges to
  precisely the least fixpoint of the enlarged database (the randomized
  equivalence properties in ``tests/test_properties.py`` check this against
  from-scratch evaluation);
* **prepared pattern queries** — :meth:`DatalogSession.query` compiles each
  pattern once through :mod:`repro.engine.planner`
  (:class:`~repro.engine.query.PreparedQuery`) and keeps the compiled plans
  in a small LRU cache, so constant-bound argument positions hit the fact
  store's composite hash indexes on every execution;
* **serving diagnostics** — :meth:`DatalogSession.stats` reports model and
  cache sizes plus the growth of the process-wide sequence intern table,
  the resource a long-lived session must watch.

The CLI exposes sessions through ``python -m repro.cli serve``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.fixpoint import CompiledFixpoint
from repro.engine.interpretation import Fact, Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.query import (
    PreparedQuery,
    QueryResult,
    known_predicates,
    output_relation,
)
from repro.errors import ValidationError
from repro.language.atoms import Atom
from repro.language.clauses import Program
from repro.language.parser import parse_program
from repro.sequences import Sequence

#: Anything :meth:`DatalogSession.add_facts` accepts: a database, a
#: ``{predicate: rows}`` mapping (rows are strings or tuples of strings), or
#: an iterable of ``(predicate, values)`` pairs.
FactsLike = Union[
    SequenceDatabase,
    Mapping[str, Iterable],
    Iterable[Tuple[str, Iterable]],
]


def _as_values(predicate: str, values) -> Tuple:
    """Normalise one row to a tuple of values, rejecting malformed input."""
    if isinstance(values, (str, Sequence)):
        return (values,)
    try:
        return tuple(values)
    except TypeError:
        raise ValidationError(
            f"relation {predicate!r}: row {values!r} must be a string or an "
            "iterable of strings"
        ) from None


def _iter_facts(facts: FactsLike) -> Iterator[Fact]:
    """Normalise the accepted fact containers to ``(predicate, values)``."""
    if isinstance(facts, SequenceDatabase):
        for relation in facts:
            for row in relation:
                yield (relation.name, row)
        return
    if isinstance(facts, Mapping):
        for predicate, rows in facts.items():
            if isinstance(rows, (str, Sequence)):
                # A bare string would silently explode into one fact per
                # character; reject it like SequenceDatabase.from_json_dict.
                raise ValidationError(
                    f"relation {predicate!r}: expected a list of rows, got "
                    f"the string {str(rows)!r}"
                )
            for row in rows:
                yield (predicate, _as_values(predicate, row))
        return
    for entry in facts:
        try:
            predicate, values = entry
        except (TypeError, ValueError):
            raise ValidationError(
                f"add_facts expects (predicate, values) pairs, got {entry!r}"
            ) from None
        yield (predicate, _as_values(predicate, values))


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :meth:`DatalogSession.add_facts` call did.

    ``base_facts_added`` counts the genuinely new input facts;
    ``facts_added`` additionally includes everything derived from them;
    ``sweeps`` is the number of global plan sweeps the maintenance run
    needed (0 new base facts still costs one confirming sweep).
    """

    base_facts_added: int
    facts_added: int
    sweeps: int
    elapsed_seconds: float


class DatalogSession:
    """A resident, incrementally-maintained model that serves queries.

    Parameters
    ----------
    program:
        The Sequence Datalog program (text or parsed), compiled once.
    database:
        Optional initial database; more facts can arrive later through
        :meth:`add_facts`.
    limits:
        Resource limits applied to every maintenance run.  Hitting one
        raises :class:`~repro.errors.FixpointNotReached`; the resident model
        is then a partial fixpoint and the session should be discarded.
    transducers:
        Optional registry for transducer terms (Transducer Datalog).
    prepared_cache_size:
        Capacity of the LRU cache of prepared patterns.

    Examples
    --------
    >>> session = DatalogSession('suffix(X[N:end]) :- r(X).', {"r": ["ab"]})
    >>> session.query("suffix(X)").values("X")
    ['', 'ab', 'b']
    >>> report = session.add_facts({"r": ["cd"]})
    >>> report.base_facts_added
    1
    >>> session.query("suffix(X)").values("X")
    ['', 'ab', 'b', 'cd', 'd']
    """

    def __init__(
        self,
        program: Union[str, Program],
        database: Optional[Union[SequenceDatabase, Mapping[str, Iterable]]] = None,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        transducers: Optional[TransducerRegistry] = None,
        prepared_cache_size: int = 128,
    ):
        self.program = parse_program(program) if isinstance(program, str) else program
        self.program.validate()
        self.limits = limits
        self._core = CompiledFixpoint(self.program, transducers)
        self._program_predicates = frozenset(self.program.predicates())
        self._prepared: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._prepared_cache_size = max(1, prepared_cache_size)
        self._prepared_hits = 0
        self._prepared_misses = 0
        self._maintenance_runs = 0
        self._queries_served = 0
        if database is not None and not isinstance(database, SequenceDatabase):
            database = SequenceDatabase.from_dict(dict(database))
        if database is not None:
            self._core.load_database(database)
        # Reach the initial fixpoint even on an empty database: bodyless
        # program clauses (e.g. ``trans("a", "u") :- true.``) derive facts
        # regardless, and a session invariantly serves a *fixpoint*.
        self._core.run(self.limits)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_facts(self, facts: FactsLike) -> MaintenanceReport:
        """Insert base facts and restore the least-fixpoint invariant.

        Only plans affected by the delta re-fire (see the module docstring);
        the result is fact-for-fact identical to evaluating the whole
        enlarged database from scratch, at a fraction of the cost.

        Malformed containers are rejected before anything is inserted.  If
        an individual fact is rejected mid-batch (an arity clash), the
        earlier facts of the batch stay — insertion is not transactional —
        but maintenance still runs before the error propagates, so the
        session keeps serving a genuine fixpoint of whatever was accepted.
        """
        started = time.perf_counter()
        # Materialise first: a malformed entry must fail the whole call
        # before any state changes.
        pending = list(_iter_facts(facts))
        interpretation = self._core.interpretation
        facts_before = interpretation.fact_count()
        sweeps_before = self._core.sweeps
        base_added = 0
        try:
            try:
                for predicate, values in pending:
                    if self._core.add_fact(predicate, values):
                        base_added += 1
            except Exception as batch_error:
                # Restore the fixpoint invariant for whatever was accepted,
                # then let the batch error propagate.  If the recovery run
                # itself trips a limit the model is NOT a fixpoint — that
                # outranks the batch error, so it wins (chained).
                self._core.run(self.limits)
                raise batch_error
            self._core.run(self.limits)
        finally:
            self._maintenance_runs += 1
        return MaintenanceReport(
            base_facts_added=base_added,
            facts_added=interpretation.fact_count() - facts_before,
            sweeps=self._core.sweeps - sweeps_before,
            elapsed_seconds=time.perf_counter() - started,
        )

    def add_fact(self, predicate: str, *values) -> MaintenanceReport:
        """Convenience wrapper: add one fact and re-establish the fixpoint."""
        return self.add_facts([(predicate, values)])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def prepare(self, pattern: Union[str, Atom]) -> PreparedQuery:
        """The compiled plan for a pattern, served from the LRU cache."""
        key = pattern if isinstance(pattern, str) else str(pattern)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self._prepared_hits += 1
            self._prepared.move_to_end(key)
            return prepared
        self._prepared_misses += 1
        prepared = PreparedQuery(pattern)
        self._prepared[key] = prepared
        if len(self._prepared) > self._prepared_cache_size:
            self._prepared.popitem(last=False)
        return prepared

    def query(self, pattern: Union[str, Atom], strict: bool = False) -> QueryResult:
        """Match a pattern atom against the resident model.

        With ``strict=True``, a predicate that neither the program defines
        nor any base fact populates raises
        :class:`~repro.errors.UnknownPredicateError`; a known predicate that
        simply derived nothing returns an empty result.
        """
        prepared = self.prepare(pattern)
        known = None
        if strict:
            known = known_predicates(
                self._program_predicates, self._core.interpretation
            )
        self._queries_served += 1
        return prepared.run(
            self._core.interpretation, strict=strict, known_predicates=known
        )

    def output(self, predicate: str = "output") -> list:
        """The ``output`` relation as plain strings (Definition 5 queries)."""
        return output_relation(self._core.interpretation, predicate)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def interpretation(self) -> Interpretation:
        """The resident least fixpoint (do not mutate it directly)."""
        return self._core.interpretation

    def fact_count(self) -> int:
        return self._core.interpretation.fact_count()

    def stats(self) -> Dict[str, object]:
        """Serving diagnostics: model, cache and intern-table growth."""
        interpretation = self._core.interpretation
        return {
            "facts": interpretation.fact_count(),
            "model_size": interpretation.size(),
            "predicates": len(interpretation.predicates()),
            "sweeps": self._core.sweeps,
            "maintenance_runs": self._maintenance_runs,
            "queries_served": self._queries_served,
            "prepared_cache": {
                "size": len(self._prepared),
                "capacity": self._prepared_cache_size,
                "hits": self._prepared_hits,
                "misses": self._prepared_misses,
            },
            "intern_table": Sequence.intern_stats(),
        }

    def __repr__(self) -> str:
        return (
            f"DatalogSession({len(self.program)} clauses, "
            f"{self.fact_count()} facts, {self._maintenance_runs} updates)"
        )
