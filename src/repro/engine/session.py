"""Incremental, index-backed query-serving sessions.

A :class:`DatalogSession` turns the batch evaluator into a serving engine:
it keeps a materialised least fixpoint resident and supports

* **incremental maintenance** — :meth:`DatalogSession.add_facts` inserts new
  base facts and resumes the compiled semi-naive evaluation from the current
  model instead of recomputing it from scratch.  The per-plan relation
  version counters of :class:`~repro.engine.fixpoint.CompiledFixpoint`
  survive between calls, so only plans whose body relations actually gained
  rows re-fire, joined through zero-copy
  :class:`~repro.database.relation.RelationDelta` views.  Sequence Datalog
  is monotone, which makes this exact: the resumed iteration converges to
  precisely the least fixpoint of the enlarged database (the randomized
  equivalence properties in ``tests/test_properties.py`` check this against
  from-scratch evaluation);
* **prepared pattern queries** — :meth:`DatalogSession.query` compiles each
  pattern once through :mod:`repro.engine.planner`
  (:class:`~repro.engine.query.PreparedQuery`) and keeps the compiled plans
  in a small LRU cache, so constant-bound argument positions hit the fact
  store's composite hash indexes on every execution;
* **demand-driven queries** — :meth:`DatalogSession.query` with
  ``demand=True`` answers a pattern from a *per-query slice* of the model
  (:mod:`repro.engine.demand`: relevance restriction plus sideways constant
  propagation) instead of the resident full fixpoint.  Slices are cached in
  their own LRU, keyed by the canonical pattern, and invalidated whenever
  :meth:`add_facts` changes the base data.  A session opened with
  ``lazy=True`` skips the up-front full materialisation entirely and only
  computes it if a non-demand query ever needs it — the serving mode for
  workloads that are all selective queries;
* **failure poisoning** — a maintenance run that hits a resource limit
  leaves the resident model a *partial* fixpoint; the session poisons
  itself and every later query or update raises
  :class:`~repro.errors.SessionPoisonedError` instead of silently serving
  incomplete answers;
* **serving diagnostics** — :meth:`DatalogSession.stats` reports model and
  cache sizes plus the growth of the process-wide sequence intern table,
  the resource a long-lived session must watch.

The CLI exposes sessions through ``python -m repro.cli serve``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.demand import DemandQuery, DemandResult
from repro.engine.fixpoint import CompiledFixpoint
from repro.engine.interpretation import Fact, Interpretation
from repro.engine.kernels import kernel_stats
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.query import (
    PreparedQuery,
    QueryResult,
    canonical_pattern,
    known_predicates,
    output_relation,
)
from repro.errors import SessionPoisonedError, StorageError, ValidationError
from repro.language.atoms import Atom
from repro.language.clauses import Program
from repro.language.parser import parse_program
from repro.sequences import Sequence

#: Anything :meth:`DatalogSession.add_facts` accepts: a database, a
#: ``{predicate: rows}`` mapping (rows are strings or tuples of strings), or
#: an iterable of ``(predicate, values)`` pairs.
FactsLike = Union[
    SequenceDatabase,
    Mapping[str, Iterable],
    Iterable[Tuple[str, Iterable]],
]


def _as_values(predicate: str, values) -> Tuple:
    """Normalise one row to a tuple of values, rejecting malformed input.

    Every value must already be a string (or interned ``Sequence``): a
    number or ``None`` deep inside a batch used to leak a raw ``TypeError``
    out of the interning layer mid-insertion; now the whole row is rejected
    up front with the offending position named.
    """
    if isinstance(values, (str, Sequence)):
        return (values,)
    try:
        row = tuple(values)
    except TypeError:
        raise ValidationError(
            f"relation {predicate!r}: row {values!r} must be a string or an "
            "iterable of strings"
        ) from None
    for position, value in enumerate(row):
        if not isinstance(value, (str, Sequence)):
            raise ValidationError(
                f"relation {predicate!r}: row {row!r} holds a non-string "
                f"value at position {position} "
                f"({type(value).__name__} {value!r})"
            )
    return row


def _iter_facts(facts: FactsLike) -> Iterator[Fact]:
    """Normalise the accepted fact containers to ``(predicate, values)``."""
    if isinstance(facts, SequenceDatabase):
        for relation in facts:
            for row in relation:
                yield (relation.name, row)
        return
    if isinstance(facts, Mapping):
        for predicate, rows in facts.items():
            if isinstance(rows, (str, Sequence)):
                # A bare string would silently explode into one fact per
                # character; reject it like SequenceDatabase.from_json_dict.
                raise ValidationError(
                    f"relation {predicate!r}: expected a list of rows, got "
                    f"the string {str(rows)!r}"
                )
            for row in rows:
                yield (predicate, _as_values(predicate, row))
        return
    for entry in facts:
        # A stray string (or any other sequence-ish scalar) of length 2
        # would silently unpack as a (predicate, values) pair below —
        # ``add_facts(["xy"])`` used to insert the bogus fact ``x("y")``.
        if not isinstance(entry, (tuple, list)):
            raise ValidationError(
                f"add_facts expects (predicate, values) pairs, got {entry!r}"
            )
        try:
            predicate, values = entry
        except ValueError:
            raise ValidationError(
                f"add_facts expects (predicate, values) pairs, got {entry!r}"
            ) from None
        if not isinstance(predicate, str):
            raise ValidationError(
                f"add_facts expects a predicate name as the first element of "
                f"a pair, got {predicate!r}"
            )
        yield (predicate, _as_values(predicate, values))


class _DemandEntry:
    """A cached demand compilation plus its invalidatable slice."""

    __slots__ = ("compiled", "slice")

    def __init__(self, compiled: DemandQuery):
        self.compiled = compiled
        self.slice: Optional[DemandResult] = None


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :meth:`DatalogSession.add_facts` call did.

    ``base_facts_added`` counts the genuinely new input facts;
    ``facts_added`` additionally includes everything derived from them;
    ``sweeps`` is the number of global plan sweeps the maintenance run
    needed (0 new base facts still costs one confirming sweep).
    """

    base_facts_added: int
    facts_added: int
    sweeps: int
    elapsed_seconds: float


class DatalogSession:
    """A resident, incrementally-maintained model that serves queries.

    Parameters
    ----------
    program:
        The Sequence Datalog program (text or parsed), compiled once.
    database:
        Optional initial database; more facts can arrive later through
        :meth:`add_facts`.
    limits:
        Resource limits applied to every maintenance run.  Hitting one
        raises :class:`~repro.errors.FixpointNotReached`; the resident model
        is then a partial fixpoint, the session poisons itself, and every
        later query or update raises
        :class:`~repro.errors.SessionPoisonedError` until the session is
        discarded and rebuilt.  (Demand slices are evaluated on the side:
        a limit hit *there* propagates but does not poison the session.)
    transducers:
        Optional registry for transducer terms (Transducer Datalog).
    prepared_cache_size:
        Capacity of the LRU cache of prepared patterns.
    demand_cache_size:
        Capacity of the LRU cache of demand-mode per-query slices.
    lazy:
        When True, the initial full fixpoint is *not* computed up front;
        demand-mode queries materialise (and cache) only their slices, and
        the full model is materialised on first need — a non-demand query,
        ``output()`` or direct ``interpretation`` access after an update.
    workers:
        When given (and greater than 1), maintenance runs on a
        :class:`~repro.engine.parallel.ParallelFixpoint` with a pool of
        that many workers instead of the sequential compiled engine; the
        resident model is fact-for-fact identical either way.  Call
        :meth:`close` (or use the session as a context manager) to shut
        the pool down.
    parallel_mode:
        Pool flavour for ``workers``: ``"auto"``, ``"thread"`` or
        ``"process"`` (see :class:`~repro.engine.parallel.ParallelFixpoint`).
    use_kernels:
        Overrides the process-wide batch-kernel default for this session's
        executors (None = follow :func:`repro.engine.kernels.batch_enabled`).
        The computed model is identical either way; ``stats()["kernels"]``
        reports which path firings took.

    Examples
    --------
    >>> session = DatalogSession('suffix(X[N:end]) :- r(X).', {"r": ["ab"]})
    >>> session.query("suffix(X)").values("X")
    ['', 'ab', 'b']
    >>> report = session.add_facts({"r": ["cd"]})
    >>> report.base_facts_added
    1
    >>> session.query("suffix(X)").values("X")
    ['', 'ab', 'b', 'cd', 'd']
    """

    def __init__(
        self,
        program: Union[str, Program],
        database: Optional[Union[SequenceDatabase, Mapping[str, Iterable]]] = None,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        transducers: Optional[TransducerRegistry] = None,
        prepared_cache_size: int = 128,
        demand_cache_size: int = 32,
        lazy: bool = False,
        workers: Optional[int] = None,
        parallel_mode: str = "auto",
        use_kernels: Optional[bool] = None,
    ):
        self.program = parse_program(program) if isinstance(program, str) else program
        self.program.validate()
        self.limits = limits
        self._transducers = transducers
        if workers is not None and workers > 1:
            # Imported lazily: parallel.py imports the fixpoint module.
            from repro.engine.parallel import ParallelFixpoint

            self._core: CompiledFixpoint = ParallelFixpoint(
                self.program,
                transducers,
                workers=workers,
                mode=parallel_mode,
                use_kernels=use_kernels,
            )
        else:
            self._core = CompiledFixpoint(
                self.program, transducers, use_kernels=use_kernels
            )
        self._program_predicates = frozenset(self.program.predicates())
        self._prepared: OrderedDict[str, PreparedQuery] = OrderedDict()
        self._prepared_cache_size = max(1, prepared_cache_size)
        self._prepared_hits = 0
        self._prepared_misses = 0
        self._maintenance_runs = 0
        self._queries_served = 0
        # Demand-mode slices are materialised from the base facts alone, so
        # the session keeps an append-only log of them (cheap: base facts
        # are the input data, not the derived model).
        self._base_facts: List[Fact] = []
        self._demand: OrderedDict[str, _DemandEntry] = OrderedDict()
        self._demand_cache_size = max(1, demand_cache_size)
        self._demand_hits = 0
        self._demand_misses = 0
        self._lazy = lazy
        self._materialized = False
        self._poisoned: Optional[str] = None
        # Durable storage hook (repro.storage.DurableStore, duck-typed):
        # when attached, add_facts writes an intent record before touching
        # the model and a commit record only after maintenance converged.
        self._storage = None
        if database is not None and not isinstance(database, SequenceDatabase):
            database = SequenceDatabase.from_dict(dict(database))
        if database is not None:
            for relation in database:
                for row in relation:
                    if self._core.add_fact(relation.name, row):
                        self._base_facts.append((relation.name, row))
        # Reach the initial fixpoint even on an empty database: bodyless
        # program clauses (e.g. ``trans("a", "u") :- true.``) derive facts
        # regardless, and a session invariantly serves a *fixpoint*.  A
        # lazy session defers this until the full model is first needed.
        if not lazy:
            self._materialize_model()

    # ------------------------------------------------------------------
    # Poisoning and lazy materialisation
    # ------------------------------------------------------------------
    def _require_usable(self) -> None:
        if self._poisoned is not None:
            raise SessionPoisonedError(
                "this session served a maintenance run that failed "
                f"({self._poisoned}); the resident model is a partial "
                "fixpoint — discard the session and rebuild it"
            )

    def _run_maintenance(self) -> None:
        """Run the core to its fixpoint, poisoning the session on failure.

        *Any* failure poisons: a resource limit (the classic case), but
        also an executor failure such as a dead parallel worker — either
        way the run stopped before convergence, so the resident model may
        be a partial fixpoint and must not keep serving.
        """
        try:
            self._core.run(self.limits)
        except Exception as error:
            self._poisoned = f"{type(error).__name__}: {error}"
            raise
        self._materialized = True

    def _materialize_model(self) -> None:
        """Ensure the resident model is the full least fixpoint."""
        self._require_usable()
        if not self._materialized:
            self._run_maintenance()

    def materialize(self) -> None:
        """Materialise the full least fixpoint now (no-op when resident)."""
        self._materialize_model()

    @property
    def poisoned(self) -> bool:
        """True when a failed maintenance run invalidated the session."""
        return self._poisoned is not None

    # ------------------------------------------------------------------
    # Durable storage (repro.storage)
    # ------------------------------------------------------------------
    @property
    def storage(self):
        """The attached :class:`~repro.storage.DurableStore`, if any."""
        return self._storage

    @property
    def generation(self) -> Optional[int]:
        """The durable generation counter (None without attached storage).

        Advances on exactly the condition a wrapping
        :class:`~repro.engine.server.DatalogServer` publishes a new
        snapshot — a committed batch that actually grew the model — so
        the two counters agree and a restarted server resumes from it.
        """
        return self._storage.generation if self._storage is not None else None

    def attach_storage(self, store) -> None:
        """Attach a durable store; from now on every batch is logged.

        Called by :func:`repro.storage.open_session` after recovery
        (attaching *after* replay is what keeps the replay itself from
        being re-logged).
        """
        if self._storage is not None:
            raise ValidationError("this session already has a durable store")
        self._storage = store

    def restore_state(self, facts, base_facts) -> None:
        """Install a previously-converged model (snapshot recovery path).

        ``facts`` is every ``(predicate, row)`` of a serialized
        interpretation, ``base_facts`` the base-fact log it was built
        from.  Valid only on a pristine session; the restored model is
        marked converged (see
        :meth:`~repro.engine.fixpoint.CompiledFixpoint.assume_converged`),
        which is sound because snapshots are written exclusively at
        published fixpoints of this very program.
        """
        if (
            self._materialized
            or self._base_facts
            or self._core.interpretation.fact_count()
        ):
            raise StorageError(
                "restore_state needs a pristine session (no facts inserted, "
                "model not materialised)"
            )
        grouped: Dict[str, List[Tuple[str, ...]]] = {}
        for predicate, values in facts:
            grouped.setdefault(predicate, []).append(tuple(values))
        for predicate, rows in grouped.items():
            self._core.interpretation.bulk_load(predicate, rows)
        self._base_facts = [
            (predicate, tuple(values)) for predicate, values in base_facts
        ]
        self._core.assume_converged()
        self._materialized = True

    def _commit_durable(self, batch_token, applied: int, facts_added: int) -> None:
        """Write the batch's commit record; a failure poisons the session.

        After a commit failure the in-memory model holds facts the WAL
        never acknowledged — serving them would break the durable-commit
        contract ("ingested" means durable, then converged), so the
        session refuses further use just as it does for a partial
        fixpoint.
        """
        if batch_token is None or self._storage is None:
            return
        try:
            self._storage.commit_batch(
                batch_token, applied=applied, facts_added=facts_added
            )
        except Exception as error:
            self._poisoned = f"{type(error).__name__}: {error}"
            raise

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_facts(self, facts: FactsLike) -> MaintenanceReport:
        """Insert base facts and restore the least-fixpoint invariant.

        Only plans affected by the delta re-fire (see the module docstring);
        the result is fact-for-fact identical to evaluating the whole
        enlarged database from scratch, at a fraction of the cost.

        Malformed containers are rejected before anything is inserted.  If
        an individual fact is rejected mid-batch (an arity clash), the
        earlier facts of the batch stay — insertion is not transactional —
        but maintenance still runs before the error propagates, so the
        session keeps serving a genuine fixpoint of whatever was accepted.

        A maintenance run that hits a resource limit poisons the session
        (see the class docstring).  On a lazy session whose full model has
        not been materialised yet, no maintenance runs at all: the call
        only records the base facts (``sweeps`` is 0) and invalidates the
        cached demand slices.

        With a durable store attached the batch runs the write-ahead
        commit protocol: its intent record is made durable *before* the
        first fact is inserted, and its commit record is written (and
        fsynced) only after maintenance converged — on a mid-batch
        rejection, for exactly the accepted prefix.  A batch whose
        maintenance run failed is never committed, so a crash-recovered
        session will not replay a batch that poisoned this one.
        """
        self._require_usable()
        started = time.perf_counter()
        # Materialise first: a malformed entry must fail the whole call
        # before any state changes.
        pending = list(_iter_facts(facts))
        interpretation = self._core.interpretation
        facts_before = interpretation.fact_count()
        sweeps_before = self._core.sweeps
        base_added = 0
        applied = 0
        added_predicates = set()
        batch_token = None
        if self._storage is not None:
            batch_token = self._storage.begin_batch(pending)
        try:
            try:
                for predicate, values in pending:
                    if self._core.add_fact(predicate, values):
                        self._base_facts.append((predicate, values))
                        added_predicates.add(predicate)
                        base_added += 1
                    applied += 1
            except Exception as batch_error:
                # Restore the fixpoint invariant for whatever was accepted,
                # then let the batch error propagate.  If the recovery run
                # itself trips a limit the model is NOT a fixpoint — that
                # outranks the batch error, so it wins (chained), the
                # session is poisoned, and the batch is never committed.
                if self._materialized:
                    self._run_maintenance()
                self._commit_durable(
                    batch_token, applied,
                    interpretation.fact_count() - facts_before,
                )
                raise batch_error
            if self._materialized:
                self._run_maintenance()
            self._commit_durable(
                batch_token, applied, interpretation.fact_count() - facts_before
            )
        finally:
            self._maintenance_runs += 1
            if added_predicates:
                self._invalidate_demand_slices(added_predicates)
        return MaintenanceReport(
            base_facts_added=base_added,
            facts_added=interpretation.fact_count() - facts_before,
            sweeps=self._core.sweeps - sweeps_before,
            elapsed_seconds=time.perf_counter() - started,
        )

    def add_fact(self, predicate: str, *values) -> MaintenanceReport:
        """Convenience wrapper: add one fact and re-establish the fixpoint."""
        return self.add_facts([(predicate, values)])

    def _invalidate_demand_slices(self, predicates: Iterable[str]) -> None:
        """Drop exactly the cached demand slices the new base facts can touch.

        A restricted slice loads and observes only its relevant predicates
        (its plans are domain-insensitive by construction), so insertions
        into other relations cannot change it; fallback slices observe the
        whole model and are always dropped.  The compiled demand plans
        survive either way — only the materialisation is discarded.
        """
        touched = set(predicates)
        for entry in self._demand.values():
            profile = entry.compiled.profile
            if not profile.restricted or touched & profile.relevant:
                entry.slice = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def prepare(self, pattern: Union[str, Atom]) -> PreparedQuery:
        """The compiled plan for a pattern, served from the LRU cache.

        Cache keys are *canonical*: the pattern is parsed first and keyed by
        its canonical rendering, so ``"out(X)"``, ``"out( X )"`` and the
        equivalent :class:`~repro.language.atoms.Atom` all share one entry
        instead of compiling three identical plans.
        """
        atom, key = canonical_pattern(pattern)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self._prepared_hits += 1
            self._prepared.move_to_end(key)
            return prepared
        self._prepared_misses += 1
        prepared = PreparedQuery(atom)
        self._prepared[key] = prepared
        if len(self._prepared) > self._prepared_cache_size:
            self._prepared.popitem(last=False)
        return prepared

    def _demand_slice(self, pattern: Union[str, Atom]) -> Tuple[DemandQuery, DemandResult]:
        """The (cached) demand compilation and materialised slice for a pattern."""
        atom, key = canonical_pattern(pattern)
        entry = self._demand.get(key)
        if entry is None:
            self._demand_misses += 1
            entry = _DemandEntry(
                DemandQuery(self.program, atom, self._transducers)
            )
            self._demand[key] = entry
            if len(self._demand) > self._demand_cache_size:
                self._demand.popitem(last=False)
        else:
            self._demand.move_to_end(key)
            if entry.slice is not None:
                self._demand_hits += 1
            else:
                self._demand_misses += 1
        if entry.slice is None:
            entry.slice = entry.compiled.materialize(self._base_facts, self.limits)
        return entry.compiled, entry.slice

    def query(
        self,
        pattern: Union[str, Atom],
        strict: bool = False,
        demand: bool = False,
    ) -> QueryResult:
        """Match a pattern atom against the resident model.

        With ``strict=True``, a predicate that neither the program defines
        nor any base fact populates raises
        :class:`~repro.errors.UnknownPredicateError`; a known predicate that
        simply derived nothing returns an empty result.

        With ``demand=True`` the pattern is answered from a demand-driven
        per-query slice (see the class docstring) — answers are identical to
        the resident-model answers, but only the slice of the model the
        pattern can observe is materialised (and cached until the next
        ``add_facts``).  On a lazy session this never computes the full
        fixpoint.
        """
        self._require_usable()
        known = None
        if strict:
            known = known_predicates(
                self._program_predicates, self._core.interpretation
            )
        self._queries_served += 1
        if demand:
            compiled, slice_result = self._demand_slice(pattern)
            return compiled.query(slice_result, strict=strict, known_predicates=known)
        self._materialize_model()
        return self.prepare(pattern).run(
            self._core.interpretation, strict=strict, known_predicates=known
        )

    def output(self, predicate: str = "output") -> list:
        """The ``output`` relation as plain strings (Definition 5 queries)."""
        self._materialize_model()
        return output_relation(self._core.interpretation, predicate)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def interpretation(self) -> Interpretation:
        """The resident least fixpoint (do not mutate it directly).

        On a lazy session this materialises the full model first.
        """
        self._materialize_model()
        return self._core.interpretation

    def fact_count(self) -> int:
        """Facts in the resident model (base facts only on an unmaterialised
        lazy session)."""
        return self._core.interpretation.fact_count()

    def base_facts(self) -> List[Fact]:
        """The extensional facts inserted so far (insertion order).

        This is the session's durable input — the derived model is a pure
        function of it — which is what ``repro restore --out`` exports.
        """
        return list(self._base_facts)

    def stats(self) -> Dict[str, object]:
        """Serving diagnostics: model, cache and intern-table growth."""
        interpretation = self._core.interpretation
        stats: Dict[str, object] = {
            "facts": interpretation.fact_count(),
            "base_facts": len(self._base_facts),
            "model_size": interpretation.size(),
            "predicates": len(interpretation.predicates()),
            "sweeps": self._core.sweeps,
            "maintenance_runs": self._maintenance_runs,
            "queries_served": self._queries_served,
            "materialized": self._materialized,
            "poisoned": self._poisoned is not None,
            "prepared_cache": {
                "size": len(self._prepared),
                "capacity": self._prepared_cache_size,
                "hits": self._prepared_hits,
                "misses": self._prepared_misses,
            },
            "demand_cache": {
                "size": len(self._demand),
                "live_slices": sum(
                    1 for entry in self._demand.values() if entry.slice is not None
                ),
                "slice_facts": sum(
                    entry.slice.fact_count
                    for entry in self._demand.values()
                    if entry.slice is not None
                ),
                "capacity": self._demand_cache_size,
                "hits": self._demand_hits,
                "misses": self._demand_misses,
            },
            "intern_table": Sequence.intern_stats(),
            "kernels": kernel_stats(),
        }
        parallel_stats = getattr(self._core, "parallel_stats", None)
        if parallel_stats is not None:
            stats["parallel"] = parallel_stats()
        if self._storage is not None:
            stats["durability"] = self._storage.stats()
        return stats

    def close(self) -> None:
        """Release resources: flush durable storage (writing a final
        snapshot when one is attached and dirty), then shut down the
        evaluation core (parallel worker pools)."""
        try:
            if self._storage is not None:
                self._storage.close()
        finally:
            self._core.close()

    def __enter__(self) -> DatalogSession:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DatalogSession({len(self.program)} clauses, "
            f"{self.fact_count()} facts, {self._maintenance_runs} updates)"
        )
