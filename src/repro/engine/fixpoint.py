"""Bottom-up computation of the least fixpoint ``T_{P,db} ^ omega``.

Two strategies are provided:

* **naive** -- every clause is re-evaluated against the full interpretation
  at every iteration.  This is the reference implementation of the
  declarative semantics (Section 3.3).
* **semi-naive** -- clauses that are *delta-safe* only consider derivations
  in which at least one body atom matches a fact derived in the previous
  iteration.  A clause is delta-safe when it has at least one body atom, all
  of its sequence variables are guarded and all of its index variables occur
  in body atoms; for such clauses new derivations can only arise from new
  facts, never from mere growth of the extended active domain, so the delta
  restriction is complete.  All other clauses (e.g. ``rep1(X, X) :- true`` or
  clauses with head-only index variables such as Example 1.1) are evaluated
  in full at every iteration.

Both strategies produce exactly the least fixpoint; tests compare them on
every paper program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.evaluation import ClauseEvaluator
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError
from repro.language.clauses import Clause, Program

NAIVE = "naive"
SEMI_NAIVE = "semi-naive"


@dataclass
class FixpointResult:
    """The result of a fixpoint computation.

    Attributes
    ----------
    interpretation:
        The least fixpoint ``lfp(T_{P,db})``.
    iterations:
        Number of applications of the ``T`` operator performed.
    strategy:
        ``"naive"`` or ``"semi-naive"``.
    new_facts_per_iteration:
        Number of new facts added at each iteration (the last entry is 0).
    elapsed_seconds:
        Wall-clock evaluation time.
    """

    interpretation: Interpretation
    iterations: int
    strategy: str
    new_facts_per_iteration: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def fact_count(self) -> int:
        return self.interpretation.fact_count()

    @property
    def model_size(self) -> int:
        """Size of the minimal model in the paper's sense (Definition 11)."""
        return self.interpretation.size()

    def tuples(self, predicate: str):
        """Convenience accessor for the facts of one predicate."""
        return self.interpretation.tuples(predicate)


def clause_is_delta_safe(clause: Clause) -> bool:
    """True if the semi-naive delta restriction is complete for the clause."""
    atoms = clause.body_atoms()
    if not atoms:
        return False
    if not clause.is_guarded():
        return False
    atom_index_vars = set()
    for atom in atoms:
        atom_index_vars |= atom.index_variables()
    return clause.index_variables() <= atom_index_vars


def compute_least_fixpoint(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    strategy: str = SEMI_NAIVE,
    transducers: Optional[TransducerRegistry] = None,
) -> FixpointResult:
    """Compute ``lfp(T_{P,db})`` bottom-up.

    Raises :class:`~repro.errors.FixpointNotReached` when a resource limit is
    exceeded before convergence (the exception carries the partial
    interpretation).
    """
    if strategy not in (NAIVE, SEMI_NAIVE):
        raise EvaluationError(f"unknown evaluation strategy {strategy!r}")

    start = time.perf_counter()
    evaluators = [ClauseEvaluator(clause, transducers) for clause in program]
    delta_safe = [clause_is_delta_safe(clause) for clause in program]

    interpretation = Interpretation()
    delta = Interpretation()
    new_facts_history: List[int] = []

    # Iteration 1: load the database (bodyless clauses are always derivable).
    for atom in database.facts():
        values = tuple(arg.value for arg in atom.args)  # type: ignore[attr-defined]
        if interpretation.add(atom.predicate, values):
            delta.add(atom.predicate, values)
    new_facts_history.append(delta.fact_count())

    iteration = 1
    while True:
        limits.check_iteration(iteration, partial=interpretation)
        limits.check_interpretation(interpretation, iteration)

        new_delta = Interpretation()
        for evaluator, is_safe in zip(evaluators, delta_safe):
            if strategy == SEMI_NAIVE and is_safe:
                derived = evaluator.derive(interpretation, delta)
            else:
                derived = evaluator.derive(interpretation, None)
            # Materialise before inserting: derivations must be based on the
            # interpretation at the start of the iteration, and inserting
            # while the generator is live would mutate the fact store the
            # matcher is iterating over.
            for fact in list(derived):
                _, values = fact
                for value in values:
                    limits.check_sequence_length(
                        len(value), interpretation, iteration
                    )
                if interpretation.add_fact(fact):
                    new_delta.add_fact(fact)
                limits.check_interpretation(interpretation, iteration)

        iteration += 1
        added = new_delta.fact_count()
        new_facts_history.append(added)
        if added == 0:
            break
        delta = new_delta

    elapsed = time.perf_counter() - start
    return FixpointResult(
        interpretation=interpretation,
        iterations=iteration,
        strategy=strategy,
        new_facts_per_iteration=new_facts_history,
        elapsed_seconds=elapsed,
    )


def compute_both_strategies(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
) -> Tuple[FixpointResult, FixpointResult]:
    """Evaluate with both strategies (used by equivalence tests)."""
    naive = compute_least_fixpoint(program, database, limits, NAIVE, transducers)
    semi = compute_least_fixpoint(program, database, limits, SEMI_NAIVE, transducers)
    return naive, semi
