"""Bottom-up computation of the least fixpoint ``T_{P,db} ^ omega``.

Four strategies are provided:

* **naive** -- every clause is re-evaluated against the full interpretation
  at every iteration.  This is the reference implementation of the
  declarative semantics (Section 3.3).
* **semi-naive** -- clauses that are *delta-safe* only consider derivations
  in which at least one body atom matches a fact derived in the previous
  iteration.  A clause is delta-safe when it has at least one body atom, all
  of its sequence variables are guarded and all of its index variables occur
  in body atoms; for such clauses new derivations can only arise from new
  facts, never from mere growth of the extended active domain, so the delta
  restriction is complete.  All other clauses (e.g. ``rep1(X, X) :- true`` or
  clauses with head-only index variables such as Example 1.1) are evaluated
  in full at every iteration.
* **compiled** -- the default.  Each clause is compiled once into a static
  join plan (:mod:`repro.engine.planner`) and the predicate dependency
  graph (:mod:`repro.analysis.dependency_graph`) orders the plans by
  strata, bottom-up.  Evaluation proceeds in global sweeps over that
  order; within a sweep a plan re-fires only when one of its body
  relations gained rows since its last firing (tracked by append-only
  version counters, joined through zero-copy delta views) or -- for
  clauses whose derivations can depend on the extended domain itself --
  when the domain grew.  Sweeping all strata (instead of iterating each
  stratum to a local fixpoint) costs only O(1) gating checks per
  up-to-date plan, handles domain growth flowing from higher strata back
  down, and keeps the partial interpretation of a limit-aborted
  evaluation representative of every predicate.
* **parallel** -- the compiled strategy with each sweep's independent
  strata fired concurrently and large firings range-partitioned across a
  worker pool (:mod:`repro.engine.parallel`).  Scheduling only changes the
  *order* in which monotone firings happen, so the computed model is
  fact-for-fact identical to the compiled strategy's.

All strategies produce exactly the least fixpoint; tests compare them on
every paper program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.database.database import SequenceDatabase
from repro.engine.bindings import Substitution, TransducerRegistry
from repro.engine.evaluation import ClauseEvaluator
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.plan import ProgramPlan
from repro.engine.planner import PlanExecutor, clause_is_delta_safe, compile_program
from repro.errors import EvaluationError
from repro.language.clauses import Program

NAIVE = "naive"
SEMI_NAIVE = "semi-naive"
COMPILED = "compiled"
PARALLEL = "parallel"

#: The strategy used when callers do not ask for a specific one.
DEFAULT_STRATEGY = COMPILED

STRATEGIES = (NAIVE, SEMI_NAIVE, COMPILED, PARALLEL)


@dataclass
class FixpointResult:
    """The result of a fixpoint computation.

    Attributes
    ----------
    interpretation:
        The least fixpoint ``lfp(T_{P,db})``.
    iterations:
        Number of rule-firing rounds performed.  For the naive and
        semi-naive strategies this is the number of applications of the
        ``T`` operator; for the compiled strategy it is the number of
        global sweeps, which plays the same role for the resource limits.
    strategy:
        ``"naive"``, ``"semi-naive"`` or ``"compiled"``.
    new_facts_per_iteration:
        Number of new facts added at each round (the last entry is 0).
    elapsed_seconds:
        Wall-clock evaluation time.
    """

    interpretation: Interpretation
    iterations: int
    strategy: str
    new_facts_per_iteration: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def fact_count(self) -> int:
        return self.interpretation.fact_count()

    @property
    def model_size(self) -> int:
        """Size of the minimal model in the paper's sense (Definition 11)."""
        return self.interpretation.size()

    def tuples(self, predicate: str):
        """Convenience accessor for the facts of one predicate."""
        return self.interpretation.tuples(predicate)


def compute_least_fixpoint(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    strategy: str = DEFAULT_STRATEGY,
    transducers: Optional[TransducerRegistry] = None,
    workers: Optional[int] = None,
    use_kernels: Optional[bool] = None,
) -> FixpointResult:
    """Compute ``lfp(T_{P,db})`` bottom-up.

    ``workers`` selects the pool size of the ``parallel`` strategy (defaults
    to the machine's CPU count) and is ignored by the other strategies.
    ``use_kernels`` overrides the batch-kernel default for the compiled and
    parallel strategies (the interpreted strategies have no kernel path).

    Raises :class:`~repro.errors.FixpointNotReached` when a resource limit is
    exceeded before convergence (the exception carries the partial
    interpretation).
    """
    if strategy not in STRATEGIES:
        raise EvaluationError(f"unknown evaluation strategy {strategy!r}")

    start = time.perf_counter()
    if strategy == PARALLEL:
        interpretation, iterations, history = _compute_parallel(
            program, database, limits, transducers, workers, use_kernels
        )
    elif strategy == COMPILED:
        interpretation, iterations, history = _compute_compiled(
            program, database, limits, transducers, use_kernels
        )
    else:
        interpretation, iterations, history = _compute_interpreted(
            program, database, limits, strategy, transducers
        )

    elapsed = time.perf_counter() - start
    return FixpointResult(
        interpretation=interpretation,
        iterations=iterations,
        strategy=strategy,
        new_facts_per_iteration=history,
        elapsed_seconds=elapsed,
    )


def _load_database(
    database: SequenceDatabase, interpretation: Interpretation
) -> int:
    """Insert the database facts; return the number inserted."""
    added = 0
    for atom in database.facts():
        values = tuple(arg.value for arg in atom.args)  # type: ignore[attr-defined]
        if interpretation.add(atom.predicate, values):
            added += 1
    return added


# ----------------------------------------------------------------------
# Interpreted strategies (naive reference and clause-level semi-naive)
# ----------------------------------------------------------------------
def _compute_interpreted(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits,
    strategy: str,
    transducers: Optional[TransducerRegistry],
) -> Tuple[Interpretation, int, List[int]]:
    evaluators = [ClauseEvaluator(clause, transducers) for clause in program]
    delta_safe = [clause_is_delta_safe(clause) for clause in program]

    interpretation = Interpretation()
    delta = Interpretation()
    new_facts_history: List[int] = []

    # Round 1: load the database (bodyless clauses are always derivable).
    for atom in database.facts():
        values = tuple(arg.value for arg in atom.args)  # type: ignore[attr-defined]
        if interpretation.add(atom.predicate, values):
            delta.add(atom.predicate, values)
    new_facts_history.append(delta.fact_count())

    # The database load above is round 1, so the first sweep is round 2 and
    # ``max_iterations = N`` permits exactly N rounds in total — matching
    # the ``iterations`` the result reports.
    iteration = 1
    limits.check_interpretation(interpretation, iteration)
    while True:
        iteration += 1
        limits.check_iteration(iteration, partial=interpretation)
        limits.check_interpretation(interpretation, iteration)

        new_delta = Interpretation()
        for evaluator, is_safe in zip(evaluators, delta_safe):
            if strategy == SEMI_NAIVE and is_safe:
                derived = evaluator.derive(interpretation, delta)
            else:
                derived = evaluator.derive(interpretation, None)
            # Materialise before inserting: derivations must be based on the
            # interpretation at the start of the iteration, and inserting
            # while the generator is live would mutate the fact store the
            # matcher is iterating over.
            for fact in list(derived):
                _, values = fact
                for value in values:
                    limits.check_sequence_length(
                        len(value), interpretation, iteration
                    )
                if interpretation.add_fact(fact):
                    new_delta.add_fact(fact)
                limits.check_interpretation(interpretation, iteration)

        added = new_delta.fact_count()
        new_facts_history.append(added)
        if added == 0:
            break
        delta = new_delta

    return interpretation, iteration, new_facts_history


# ----------------------------------------------------------------------
# Compiled strategy (dependency-scheduled, predicate-level semi-naive)
# ----------------------------------------------------------------------
class CompiledFixpoint:
    """Resident state of the compiled strategy: model plus firing bookkeeping.

    The one-shot evaluation path creates an instance, loads the database,
    runs to the fixpoint and discards it.  The long-lived
    :class:`~repro.engine.session.DatalogSession` keeps the instance around:
    because the per-plan version bookkeeping survives between :meth:`run`
    calls, loading a *delta* of base facts and running again re-fires only
    the plans whose body relations actually gained rows (delta-restricted
    for delta-safe clauses), i.e. incremental semi-naive maintenance.  This
    is exact for Sequence Datalog because evaluation is monotone: resuming
    semi-naive iteration from the old fixpoint with the new base facts
    inserted computes precisely the least fixpoint of the enlarged database.
    """

    __slots__ = (
        "program_plan", "plans", "executors", "interpretation", "sweeps",
        "use_kernels", "_last_versions", "_last_domain",
    )

    def __init__(
        self,
        program: Program,
        transducers: Optional[TransducerRegistry] = None,
        program_plan: Optional[ProgramPlan] = None,
        seeds: Optional[Dict[int, Substitution]] = None,
        use_kernels: Optional[bool] = None,
    ):
        """``program_plan`` lets a caller supply an already-compiled (and
        possibly restricted or adornment-seeded) plan set instead of
        compiling ``program`` afresh; ``seeds`` maps plan indexes to the
        initial substitutions their executors start from (demand-driven
        evaluation pushes query constants into clause plans this way).
        ``use_kernels`` overrides the process-wide batch-kernel default for
        this engine's executors (None = follow the default)."""
        self.program_plan = (
            program_plan if program_plan is not None else compile_program(program)
        )
        self.plans = self.program_plan.program_plans
        self.use_kernels = use_kernels
        seeds = seeds or {}
        self.executors = [
            PlanExecutor(plan, transducers, seed=seeds.get(index), use_kernels=use_kernels)
            for index, plan in enumerate(self.plans)
        ]
        self.interpretation = Interpretation()
        #: Total sweeps performed over this instance's lifetime.
        self.sweeps = 0
        # Per-plan firing bookkeeping: the relation versions of the body
        # predicates and the domain version observed just before the last
        # firing.  ``None`` means the plan has never fired.
        self._last_versions: List[Optional[Dict[str, int]]] = [None] * len(self.plans)
        self._last_domain: List[int] = [0] * len(self.plans)

    def add_fact(self, predicate: str, values) -> bool:
        """Insert one base fact; return True if it is new."""
        return self.interpretation.add(predicate, values)

    def load_database(self, database: SequenceDatabase) -> int:
        """Insert the database facts; return the number inserted."""
        return _load_database(database, self.interpretation)

    def assume_converged(self) -> None:
        """Mark every plan observed at the current relation/domain versions.

        The storage recovery path (:mod:`repro.storage`) loads a snapshot
        that was written at a *published fixpoint* — the resident
        interpretation already satisfies every rule, so instead of
        re-deriving anything the loader inserts the rows and calls this to
        re-establish the incremental bookkeeping: the next :meth:`run` is
        a single zero-firing confirming sweep, and later deltas fire
        against the restored versions exactly as if the engine had
        computed the model itself.  Calling this on a non-fixpoint
        interpretation silently under-derives; only snapshot recovery may
        use it.
        """
        for plan_index in range(len(self.plans)):
            self._observe(plan_index)

    def _firing_mode(self, plan_index: int) -> Optional[str]:
        """How a plan must fire right now: ``"full"``, ``"delta"`` or ``None``.

        ``None`` means the plan is up to date: no body relation gained rows
        since its last firing and (for domain-sensitive plans) the domain did
        not grow.  The parallel executor shares this gating logic.
        """
        interpretation = self.interpretation
        plan = self.plans[plan_index]
        seen = self._last_versions[plan_index]
        if seen is None:
            return "full"
        changed = any(
            interpretation.relation_version(predicate) > seen.get(predicate, 0)
            for predicate in plan.body_predicates()
        )
        if plan.delta_safe:
            return "delta" if changed else None
        if changed or interpretation.domain_version > self._last_domain[plan_index]:
            return "full"
        return None

    def _delta_views(self, plan_index: int) -> Dict[str, "RelationDelta"]:
        """Zero-copy views of the rows each body relation gained since the
        plan's last firing (for a delta-mode firing)."""
        interpretation = self.interpretation
        seen = self._last_versions[plan_index]
        assert seen is not None
        views = {}
        for predicate in self.plans[plan_index].body_predicates():
            relation = interpretation.relation(predicate)
            if relation is None:
                continue
            views[predicate] = relation.delta_view(seen.get(predicate, 0))
        return views

    def _observe(self, plan_index: int) -> None:
        """Record the plan's observation point at the *current* versions.

        Must be called before the firing's derivations are merged so that
        facts the firing itself derives count as delta for the next round.
        """
        interpretation = self.interpretation
        self._last_versions[plan_index] = {
            predicate: interpretation.relation_version(predicate)
            for predicate in self.plans[plan_index].body_predicates()
        }
        self._last_domain[plan_index] = interpretation.domain_version

    def _merge(self, facts, limits: EvaluationLimits, iteration: int) -> int:
        """Insert derived facts under the limits; return the new-fact count."""
        interpretation = self.interpretation
        added = 0
        for fact in facts:
            _, values = fact
            for value in values:
                limits.check_sequence_length(len(value), interpretation, iteration)
            if interpretation.add_fact(fact):
                added += 1
            limits.check_interpretation(interpretation, iteration)
        return added

    def _fire(self, plan_index: int, limits: EvaluationLimits, iteration: int) -> int:
        """Fire one plan (full or delta-restricted); return new-fact count."""
        mode = self._firing_mode(plan_index)
        if mode is None:
            return 0
        executor = self.executors[plan_index]
        if mode == "delta":
            derived = executor.derive_semi_naive(
                self.interpretation, self._delta_views(plan_index)
            )
        else:
            derived = executor.derive(self.interpretation)
        self._observe(plan_index)
        # Materialise before inserting: inserting while the generator is
        # live would mutate the fact store the matcher is iterating over.
        return self._merge(list(derived), limits, iteration)

    def close(self) -> None:
        """Release auxiliary resources (worker pools in subclasses)."""

    def _sweep(self, limits: EvaluationLimits, iteration: int) -> int:
        """Visit every plan once (bottom-up); return the new-fact count.

        The parallel executor overrides this with wave-concurrent firing;
        the surrounding :meth:`run` loop (limit accounting, history,
        convergence test) stays shared so its semantics cannot drift
        between strategies.
        """
        sweep_added = 0
        for plan_indexes in self.program_plan.schedule:
            for plan_index in plan_indexes:
                sweep_added += self._fire(plan_index, limits, iteration)
        return sweep_added

    def run(self, limits: EvaluationLimits = DEFAULT_LIMITS) -> List[int]:
        """Sweep until no plan derives anything new; return per-sweep counts.

        Global sweeps in bottom-up stratum order.  Every sweep visits each
        plan, but the version gating inside ``_fire`` makes visits to
        up-to-date plans O(1): a plan only re-fires when one of its body
        relations gained rows since its last firing (joined through delta
        views) or, for domain-sensitive plans, when the domain grew.  The
        bottom-up order makes facts derived low in the dependency graph
        visible to higher strata within the same sweep, so the number of
        sweeps is bounded by the naive iteration count; interleaving all
        strata in one sweep (instead of iterating each stratum to a local
        fixpoint) keeps the partial interpretation of an aborted evaluation
        representative of every predicate, matching the reference strategies
        on the paper's infinite-fixpoint programs.

        The iteration limit applies per call, so a session performing many
        small maintenance runs is not eventually starved by its own history.
        The insertion of the base (or delta) facts preceding the call counts
        as round 1 and every sweep as one further round, so
        ``max_iterations = N`` permits exactly N rounds — the same count a
        :class:`FixpointResult` reports as ``iterations``.
        """
        interpretation = self.interpretation
        history: List[int] = []
        iteration = 1
        limits.check_interpretation(interpretation, iteration)
        while True:
            iteration += 1
            limits.check_iteration(iteration, partial=interpretation)
            limits.check_interpretation(interpretation, iteration)
            sweep_added = self._sweep(limits, iteration)
            self.sweeps += 1
            history.append(sweep_added)
            if sweep_added == 0:
                break
        return history


def _compute_compiled(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits,
    transducers: Optional[TransducerRegistry],
    use_kernels: Optional[bool] = None,
) -> Tuple[Interpretation, int, List[int]]:
    engine = CompiledFixpoint(program, transducers, use_kernels=use_kernels)
    new_facts_history = [engine.load_database(database)]
    new_facts_history.extend(engine.run(limits))
    return engine.interpretation, engine.sweeps + 1, new_facts_history


def _compute_parallel(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits,
    transducers: Optional[TransducerRegistry],
    workers: Optional[int],
    use_kernels: Optional[bool] = None,
) -> Tuple[Interpretation, int, List[int]]:
    # Imported lazily: parallel.py imports CompiledFixpoint from this module.
    from repro.engine.parallel import ParallelFixpoint

    engine = ParallelFixpoint(
        program, transducers, workers=workers, use_kernels=use_kernels
    )
    try:
        new_facts_history = [engine.load_database(database)]
        new_facts_history.extend(engine.run(limits))
    finally:
        engine.close()
    return engine.interpretation, engine.sweeps + 1, new_facts_history


def compute_both_strategies(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
) -> Tuple[FixpointResult, FixpointResult]:
    """Evaluate with naive and semi-naive (used by equivalence tests)."""
    naive = compute_least_fixpoint(program, database, limits, NAIVE, transducers)
    semi = compute_least_fixpoint(program, database, limits, SEMI_NAIVE, transducers)
    return naive, semi


def compute_all_strategies(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
) -> Tuple[FixpointResult, FixpointResult, FixpointResult]:
    """Evaluate with all three strategies (used by equivalence tests)."""
    naive, semi = compute_both_strategies(program, database, limits, transducers)
    compiled = compute_least_fixpoint(program, database, limits, COMPILED, transducers)
    return naive, semi, compiled
