"""Fixpoint evaluation engine for Sequence Datalog (Section 3.2-3.3).

The engine implements:

* :class:`~repro.engine.bindings.Substitution` -- substitutions based on a
  domain, extended to interpreted terms exactly as in Section 3.2;
* :class:`~repro.engine.interpretation.Interpretation` -- sets of ground
  atoms with their extended active domain;
* :class:`~repro.engine.toperator.TOperator` -- the operator ``T_{P,db}`` of
  Definition 4 (monotonic, continuous);
* :mod:`~repro.engine.fixpoint` -- naive and semi-naive bottom-up computation
  of the least fixpoint ``T_{P,db} ^ omega`` with resource limits;
* :mod:`~repro.engine.query` -- pattern queries over interpretations.
"""

from repro.engine.bindings import Substitution
from repro.engine.interpretation import Interpretation
from repro.engine.limits import EvaluationLimits
from repro.engine.toperator import TOperator
from repro.engine.fixpoint import FixpointResult, compute_least_fixpoint
from repro.engine.query import QueryResult, evaluate_query

__all__ = [
    "EvaluationLimits",
    "FixpointResult",
    "Interpretation",
    "QueryResult",
    "Substitution",
    "TOperator",
    "compute_least_fixpoint",
    "evaluate_query",
]
