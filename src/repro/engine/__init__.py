"""Fixpoint evaluation engine for Sequence Datalog (Section 3.2-3.3).

The engine implements:

* :class:`~repro.engine.bindings.Substitution` -- substitutions based on a
  domain, extended to interpreted terms exactly as in Section 3.2;
* :class:`~repro.engine.interpretation.Interpretation` -- sets of ground
  atoms with their extended active domain;
* :class:`~repro.engine.toperator.TOperator` -- the operator ``T_{P,db}`` of
  Definition 4 (monotonic, continuous);
* :mod:`~repro.engine.plan` / :mod:`~repro.engine.planner` -- compiled
  clause plans: static join ordering, per-scan index column selection and
  the plan executor;
* :mod:`~repro.engine.fixpoint` -- naive, semi-naive and compiled
  (dependency-scheduled) bottom-up computation of the least fixpoint
  ``T_{P,db} ^ omega`` with resource limits;
* :mod:`~repro.engine.query` -- pattern queries over interpretations,
  compiled once into index-aware plans (:class:`~repro.engine.query.PreparedQuery`);
* :mod:`~repro.engine.demand` -- demand-driven (magic-set-style) query
  evaluation: relevance-restricted subprograms with the pattern's constants
  pushed sideways into clause plans;
* :mod:`~repro.engine.session` -- :class:`~repro.engine.session.DatalogSession`,
  the incremental query-serving layer over a resident fixpoint;
* :mod:`~repro.engine.parallel` -- :class:`~repro.engine.parallel.ParallelFixpoint`,
  wave-scheduled, range-partitioned fixpoint evaluation over a worker pool;
* :mod:`~repro.engine.server` -- :class:`~repro.engine.server.DatalogServer`,
  the thread-safe snapshot-isolated multi-client serving layer.
"""

from repro.engine.bindings import Substitution
from repro.engine.demand import (
    DemandProfile,
    DemandQuery,
    DemandResult,
    adornment_of,
    compile_demand,
    demand_query,
)
from repro.engine.interpretation import Interpretation
from repro.engine.kernels import (
    BatchExecutor,
    batch_classification,
    batch_enabled,
    kernel_stats,
    reset_kernel_stats,
    set_batch_enabled,
)
from repro.engine.limits import EvaluationLimits
from repro.engine.plan import ClausePlan, ProgramPlan
from repro.engine.planner import PlanExecutor, compile_clause, compile_program
from repro.engine.toperator import TOperator
from repro.engine.fixpoint import (
    COMPILED,
    CompiledFixpoint,
    DEFAULT_STRATEGY,
    FixpointResult,
    NAIVE,
    PARALLEL,
    SEMI_NAIVE,
    compute_least_fixpoint,
)
from repro.engine.parallel import ParallelFixpoint
from repro.engine.query import PreparedQuery, QueryResult, evaluate_query
from repro.engine.server import DatalogServer, ModelSnapshot
from repro.engine.session import DatalogSession, MaintenanceReport
from repro.errors import StorageError


def __getattr__(name: str):
    # ``open_session`` lives in repro.storage, which imports the session
    # module from this package — a module-level import here would be
    # circular when ``repro.storage`` is imported first, so the re-export
    # resolves lazily.
    if name == "open_session":
        from repro.storage import open_session

        return open_session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchExecutor",
    "COMPILED",
    "ClausePlan",
    "CompiledFixpoint",
    "DEFAULT_STRATEGY",
    "DatalogServer",
    "DatalogSession",
    "DemandProfile",
    "DemandQuery",
    "DemandResult",
    "EvaluationLimits",
    "FixpointResult",
    "Interpretation",
    "MaintenanceReport",
    "ModelSnapshot",
    "NAIVE",
    "PARALLEL",
    "ParallelFixpoint",
    "PlanExecutor",
    "PreparedQuery",
    "ProgramPlan",
    "QueryResult",
    "SEMI_NAIVE",
    "StorageError",
    "Substitution",
    "TOperator",
    "adornment_of",
    "open_session",
    "batch_classification",
    "batch_enabled",
    "compile_clause",
    "compile_demand",
    "compile_program",
    "compute_least_fixpoint",
    "demand_query",
    "evaluate_query",
    "kernel_stats",
    "reset_kernel_stats",
    "set_batch_enabled",
]
