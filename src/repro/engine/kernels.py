"""Batch-vectorized join kernels over interned-id columns.

The per-tuple executor (:class:`repro.engine.planner.PlanExecutor`) walks a
recursive generator pipeline, allocating a :class:`Substitution` per
surviving row — classic interpreter overhead.  For a large class of plans
none of that machinery is needed: when every step is an
``AtomScan``/``CompareFilter`` over *bare* variables and constants, a
clause firing is a pure relational join over interned ids, and the whole
firing can run as a short pipeline of batch operators:

* **full scan** — materialise a row-range of a relation's per-column
  intern-id arrays (:meth:`SequenceRelation.id_columns`) into id rows;
* **probe join** — for each batch row, probe the composite position index
  over the scan's bound columns (:meth:`SequenceRelation.probe_positions`);
  against a mid-store delta window this degrades into a hash join: the
  window is hashed once into a window-local position index
  (:meth:`RelationDelta.probe_positions`) and the batch streams through it;
* **filter** — a bound comparison over id columns (interning makes
  sequence equality id equality);
* **head projection** — project the head's id columns, deduplicate against
  the target relation's membership keys, and decode the survivors back to
  :class:`Sequence` tuples.

Batches are row-major lists of id tuples with a static variable→slot map;
the columnar storage is sliced once per scan (``array`` slicing and ``zip``
run at C speed) and everything downstream is int tuple manipulation.

Correctness rests on two invariants, both enforced elsewhere and
backstopped by the randomized equivalence properties in
``tests/test_properties.py``:

* every value stored in an :class:`Interpretation`'s relations is a member
  of its extended domain (``Interpretation.add`` inserts row values into
  the domain), so the per-row ``value in domain`` check of
  :func:`repro.engine.evaluation.match_term` is a tautology for bare
  variables and the batch path may skip it;
* sequences are interned process-wide, so id equality is sequence
  equality, and pre-deduplicating head rows (against the target relation
  and within the batch) changes neither the merged model nor the
  new-fact counts version gating relies on.

:func:`batch_classification` decides statically whether a plan is
batchable; :class:`PlanExecutor` routes batchable plans here and falls
back to the tuple path otherwise (transducer calls, indexed terms,
enumerations, domain-sensitive plans).  Module-level counters in the
style of :meth:`Sequence.intern_stats` make the split observable through
``stats()`` surfaces.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.database.relation import RelationDelta, SequenceRelation
from repro.engine.interpretation import Interpretation
from repro.engine.plan import AtomScan, BindEquality, ClausePlan, CompareFilter
from repro.language.terms import ConstantTerm, SequenceVariable
from repro.sequences import Sequence

ScanSource = Union[SequenceRelation, RelationDelta]
IdRow = Tuple[int, ...]
Batch = List[IdRow]

#: Fallback reasons reported by :func:`batch_classification`.
REASON_DISABLED = "kernels disabled"
REASON_NO_SCAN = "no body atom to scan"
REASON_HEAD_ENUMERATION = "head enumerates unbound variables"
REASON_HEAD_TERM = "non-bare head argument"
REASON_ATOM_TERM = "non-bare atom argument"
REASON_COMPARE_TERM = "non-bare comparison side"
REASON_BIND_EQUALITY = "binding equality"
REASON_ENUMERATION = "domain-enumerated comparison"
REASON_DOMAIN_SENSITIVE = "domain-sensitive plan"
REASON_SEED_MISMATCH = "seed does not match the plan adornment"

# ----------------------------------------------------------------------
# Toggle
# ----------------------------------------------------------------------
_ENABLED = True


def batch_enabled() -> bool:
    """Whether batchable plans default to the kernel path."""
    return _ENABLED


def set_batch_enabled(enabled: bool) -> bool:
    """Set the process-wide default; return the previous value.

    Executors built afterwards pick the new default up; a per-executor
    ``use_kernels`` argument overrides it either way.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Execution counters (intern_stats-style, process-wide)
# ----------------------------------------------------------------------
_STATS_LOCK = threading.Lock()


def _zero_counters() -> Dict[str, int]:
    return {
        "batched_firings": 0,
        "tuple_firings": 0,
        "scan_rows": 0,
        "probe_rows": 0,
        "filter_rows": 0,
        "head_rows": 0,
        "facts_emitted": 0,
    }


_COUNTERS = _zero_counters()
_FALLBACKS: Dict[str, int] = {}


def kernel_stats() -> Dict[str, object]:
    """A snapshot of the kernel execution counters.

    ``batched_firings``/``tuple_firings`` count clause firings by path;
    ``fallbacks`` breaks the tuple firings down by classification reason;
    the ``*_rows`` counters are rows produced by the scan/probe kernels
    and rows examined by the filter/head kernels.  Counters are per
    process (parallel *process* workers keep their own).
    """
    with _STATS_LOCK:
        stats: Dict[str, object] = dict(_COUNTERS)
        stats["fallbacks"] = dict(_FALLBACKS)
    stats["enabled"] = _ENABLED
    return stats


def reset_kernel_stats() -> None:
    """Zero the counters (tests and benchmarks)."""
    with _STATS_LOCK:
        for key in list(_COUNTERS):
            _COUNTERS[key] = 0
        _FALLBACKS.clear()


def record_tuple_firing(reason: Optional[str]) -> None:
    """Count one firing routed through the per-tuple path."""
    with _STATS_LOCK:
        _COUNTERS["tuple_firings"] += 1
        key = reason or "unclassified"
        _FALLBACKS[key] = _FALLBACKS.get(key, 0) + 1


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def _is_bare(term) -> bool:
    return isinstance(term, (SequenceVariable, ConstantTerm))


def batch_classification(plan: ClausePlan) -> Tuple[bool, Optional[str]]:
    """Decide statically whether a plan can run on the batch kernels.

    Returns ``(True, None)`` for batchable plans, else ``(False, reason)``.
    A plan is batchable when every step is an ``AtomScan`` whose arguments
    are bare variables or constants, or a ``CompareFilter`` whose sides
    are bare; the head needs no enumeration and has only bare arguments;
    and the plan is not domain-sensitive.  Adornment seeds are fine (the
    seed ids become the initial batch row).
    """
    has_scan = False
    for step in plan.steps:
        if isinstance(step, AtomScan):
            has_scan = True
            if not all(_is_bare(arg) for arg in step.atom.args):
                return False, REASON_ATOM_TERM
        elif isinstance(step, CompareFilter):
            comparison = step.comparison
            if not (_is_bare(comparison.left) and _is_bare(comparison.right)):
                return False, REASON_COMPARE_TERM
        elif isinstance(step, BindEquality):
            return False, REASON_BIND_EQUALITY
        else:
            return False, REASON_ENUMERATION
    if not has_scan:
        return False, REASON_NO_SCAN
    if plan.head_plan.needs_enumeration:
        return False, REASON_HEAD_ENUMERATION
    if not all(_is_bare(arg) for arg in plan.clause.head.args):
        return False, REASON_HEAD_TERM
    if plan.domain_sensitive:
        # Unreachable for bare-only plans today; kept as a guard so a new
        # source of domain sensitivity cannot silently reach the kernels.
        return False, REASON_DOMAIN_SENSITIVE
    return True, None


# ----------------------------------------------------------------------
# Compiled batch operators
# ----------------------------------------------------------------------
class _ScanOp:
    """One ``AtomScan`` compiled against the batch's slot layout.

    ``probe_columns`` are the sorted columns probed through a composite
    index (constants and variables already bound in the batch);
    ``key_parts`` tells how to build the probe key from an input row
    (``(True, slot)`` or ``(False, constant_id)``), parallel to
    ``probe_columns``.  ``same_checks`` are intra-row equality constraints
    from a variable repeated within the atom; ``out_columns`` are the
    columns projected into new slots, in slot order.
    """

    __slots__ = (
        "predicate", "atom_position", "arity", "probe_columns", "key_parts",
        "keyed_by_slot", "single_key_slot", "same_checks", "out_columns",
        "single_out_column",
    )

    def __init__(self, step: AtomScan, slots: Dict[str, int]) -> None:
        atom = step.atom
        self.predicate = atom.predicate
        self.atom_position = step.atom_position
        self.arity = atom.arity
        probing: List[Tuple[int, Tuple[bool, int]]] = []
        same_checks: List[Tuple[int, int]] = []
        out_columns: List[int] = []
        local_first: Dict[str, int] = {}
        for column, arg in enumerate(atom.args):
            if isinstance(arg, ConstantTerm):
                probing.append((column, (False, arg.value.intern_id)))
            elif arg.name in local_first:
                # Repeated within this atom: the first occurrence produces
                # the value, later ones become intra-row equality checks.
                same_checks.append((column, local_first[arg.name]))
            elif arg.name in slots:
                probing.append((column, (True, slots[arg.name])))
            else:
                local_first[arg.name] = column
                slots[arg.name] = len(slots)
                out_columns.append(column)
        probing.sort()
        self.probe_columns = tuple(column for column, _ in probing)
        self.key_parts = tuple(part for _, part in probing)
        self.keyed_by_slot = any(is_slot for is_slot, _ in self.key_parts)
        self.same_checks = tuple(same_checks)
        self.out_columns = tuple(out_columns)
        # Specialisations for the hot single-column cases.
        self.single_key_slot = (
            self.key_parts[0][1]
            if len(self.key_parts) == 1 and self.key_parts[0][0]
            else None
        )
        self.single_out_column = out_columns[0] if len(out_columns) == 1 else None


class _FilterOp:
    """One ``CompareFilter`` compiled to slot/constant id comparisons."""

    __slots__ = ("left_slot", "left_const", "right_slot", "right_const", "keep_equal")

    def __init__(self, step: CompareFilter, slots: Dict[str, int]) -> None:
        comparison = step.comparison
        self.keep_equal = comparison.is_equality()
        self.left_slot, self.left_const = self._side(comparison.left, slots)
        self.right_slot, self.right_const = self._side(comparison.right, slots)

    @staticmethod
    def _side(term, slots: Dict[str, int]) -> Tuple[int, int]:
        if isinstance(term, ConstantTerm):
            return -1, term.value.intern_id
        # The planner only emits a CompareFilter once both sides are bound.
        return slots[term.name], 0


class BatchExecutor:
    """Executes a batchable clause plan as a pipeline of batch kernels.

    ``derive``/``derive_delta`` mirror :class:`PlanExecutor`'s firing
    semantics exactly (same step order, same delta restriction, same
    emitted fact set up to duplicates) but return materialised fact lists
    instead of generators — the fixpoint engine materialises derivations
    before merging anyway.
    """

    __slots__ = (
        "plan", "_ops", "_scan_positions", "_seed_row", "_head_parts",
        "_head_key",
    )

    def __init__(self, plan: ClausePlan, seed_row: IdRow = ()) -> None:
        self.plan = plan
        slots: Dict[str, int] = {name: i for i, name in enumerate(plan.seed_sequences)}
        self._seed_row = tuple(seed_row)
        ops: List[Union[_ScanOp, _FilterOp]] = []
        for step in plan.steps:
            if isinstance(step, AtomScan):
                ops.append(_ScanOp(step, slots))
            else:
                assert isinstance(step, CompareFilter)
                ops.append(_FilterOp(step, slots))
        self._ops = tuple(ops)
        self._scan_positions = frozenset(
            op.atom_position for op in ops if isinstance(op, _ScanOp)
        )
        head_parts: List[Tuple[bool, int]] = []
        for arg in plan.clause.head.args:
            if isinstance(arg, ConstantTerm):
                head_parts.append((False, arg.value.intern_id))
            else:
                head_parts.append((True, slots[arg.name]))
        self._head_parts = tuple(head_parts)
        self._head_key = self._compile_head_key(self._head_parts)

    @staticmethod
    def _compile_head_key(
        head_parts: Tuple[Tuple[bool, int], ...]
    ) -> Callable[[IdRow], IdRow]:
        """A batch-row -> head-id-key extractor, specialised where possible.

        All-slot heads (the common case) project through ``itemgetter``,
        which builds the key tuple at C speed; heads mixing constants fall
        back to a generator expression.
        """
        if all(is_slot for is_slot, _ in head_parts):
            slots = tuple(value for _, value in head_parts)
            if len(slots) == 1:
                only = slots[0]
                return lambda row: (row[only],)
            return itemgetter(*slots)
        return lambda row: tuple(
            row[value] if is_slot else value for is_slot, value in head_parts
        )

    # ------------------------------------------------------------------
    # Firing API (mirrors PlanExecutor)
    # ------------------------------------------------------------------
    def derive(self, interpretation: Interpretation) -> list:
        """All ground head facts derivable from the interpretation."""
        return self._execute(interpretation, -1, None)

    def derive_delta(
        self, interpretation: Interpretation, atom_position: int, view: ScanSource
    ) -> list:
        """Fire once with the scan at ``atom_position`` restricted to ``view``."""
        if atom_position not in self._scan_positions:
            return []
        return self._execute(interpretation, atom_position, view)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _execute(
        self,
        interpretation: Interpretation,
        delta_position: int,
        view: Optional[ScanSource],
    ) -> list:
        counters = {"scan_rows": 0, "probe_rows": 0, "filter_rows": 0}
        batch: Batch = [self._seed_row]
        for op in self._ops:
            if isinstance(op, _ScanOp):
                batch = self._run_scan(
                    op, batch, interpretation, delta_position, view, counters
                )
            else:
                counters["filter_rows"] += len(batch)
                batch = self._run_filter(op, batch)
            if not batch:
                break
        facts = self._emit(batch, interpretation) if batch else []
        with _STATS_LOCK:
            _COUNTERS["batched_firings"] += 1
            _COUNTERS["scan_rows"] += counters["scan_rows"]
            _COUNTERS["probe_rows"] += counters["probe_rows"]
            _COUNTERS["filter_rows"] += counters["filter_rows"]
            _COUNTERS["head_rows"] += len(batch)
            _COUNTERS["facts_emitted"] += len(facts)
        return facts

    def _run_scan(
        self,
        op: _ScanOp,
        batch: Batch,
        interpretation: Interpretation,
        delta_position: int,
        view: Optional[ScanSource],
        counters: Dict[str, int],
    ) -> Batch:
        if op.atom_position == delta_position:
            source = view
        else:
            source = interpretation.relation(op.predicate)
        if source is None or source.arity != op.arity:
            return []

        if isinstance(source, RelationDelta):
            relation = source.relation
            start = source.start
            stop = min(source.stop, len(relation))
            delta = source
        else:
            relation = source
            start = 0
            stop = len(relation)
            delta = None
        if stop <= start:
            return []
        columns = relation.id_columns()
        out_columns = op.out_columns
        same_checks = op.same_checks

        if op.keyed_by_slot:
            # Probe join: one composite-index probe per input row.  Against
            # a mid-store window this is a hash join — the window is hashed
            # once into a window-local position index on the first probe.
            if delta is not None and start > 0 and op.probe_columns not in relation._indexes:
                batch = self._probe_window(op, batch, delta, columns)
                counters["probe_rows"] += len(batch)
                return batch
            key_parts = op.key_parts
            single_key = op.single_key_slot
            single_out = op.single_out_column if not same_checks else None
            bucket_get = relation.ensure_index(op.probe_columns).get
            single_out_ids = columns[single_out] if single_out is not None else None
            out: Batch = []
            append = out.append
            for row in batch:
                if single_key is not None:
                    key = (row[single_key],)
                else:
                    key = tuple(
                        row[value] if is_slot else value for is_slot, value in key_parts
                    )
                bucket = bucket_get(key)
                if not bucket:
                    continue
                # Clip the ascending bucket to the captured [start, stop)
                # window; appends racing this probe land past ``high``.
                high = len(bucket)
                if bucket[high - 1] >= stop:
                    high = bisect_left(bucket, stop, 0, high)
                low = bisect_left(bucket, start, 0, high) if start else 0
                if single_out_ids is not None:
                    for index_position in range(low, high):
                        append(row + (single_out_ids[bucket[index_position]],))
                    continue
                for index_position in range(low, high):
                    position = bucket[index_position]
                    if same_checks and any(
                        columns[column][position] != columns[first][position]
                        for column, first in same_checks
                    ):
                        continue
                    if out_columns:
                        append(
                            row
                            + tuple(columns[column][position] for column in out_columns)
                        )
                    else:
                        append(row)
            counters["probe_rows"] += len(out)
            return out

        # Input-independent scan: constants-only probe or a full window
        # scan; the matching rows are materialised once and crossed with
        # the batch (the common case is the pipeline-opening scan, where
        # the batch is a single seed row).
        if op.probe_columns:
            key = tuple(value for _, value in op.key_parts)
            if delta is not None:
                positions: List[int] = list(delta.probe_positions(op.probe_columns, key))
            else:
                positions = relation.probe_positions(op.probe_columns, key, start, stop)
            position_range = positions
        else:
            position_range = range(start, stop)

        if same_checks or (op.probe_columns and out_columns):
            ext: Batch = []
            for position in position_range:
                if same_checks and any(
                    columns[column][position] != columns[first][position]
                    for column, first in same_checks
                ):
                    continue
                ext.append(tuple(columns[column][position] for column in out_columns))
        elif op.probe_columns:
            # Fully-bound constant probe: the match is a membership test.
            ext = [() for _ in position_range]
        else:
            # Unconstrained full scan: slice the id columns at C speed.
            ext = list(
                zip(*(columns[column][start:stop] for column in out_columns))
            )
        counters["scan_rows"] += len(ext)
        if not ext:
            return []
        if len(batch) == 1 and not batch[0]:
            return ext
        return [row + extension for row in batch for extension in ext]

    @staticmethod
    def _probe_window(
        op: _ScanOp, batch: Batch, delta: RelationDelta, columns
    ) -> Batch:
        """Hash join against a mid-store window with no persistent index.

        ``RelationDelta.probe_positions`` hashes the window into a
        window-local position index on the first probe, so the window is
        scanned exactly once however large the batch is.
        """
        probe = delta.probe_positions
        probe_columns = op.probe_columns
        key_parts = op.key_parts
        single_key = op.single_key_slot
        same_checks = op.same_checks
        out_columns = op.out_columns
        out: Batch = []
        append = out.append
        for row in batch:
            if single_key is not None:
                key = (row[single_key],)
            else:
                key = tuple(
                    row[value] if is_slot else value for is_slot, value in key_parts
                )
            for position in probe(probe_columns, key):
                if same_checks and any(
                    columns[column][position] != columns[first][position]
                    for column, first in same_checks
                ):
                    continue
                if out_columns:
                    append(
                        row + tuple(columns[column][position] for column in out_columns)
                    )
                else:
                    append(row)
        return out

    @staticmethod
    def _run_filter(op: _FilterOp, batch: Batch) -> Batch:
        keep_equal = op.keep_equal
        left, right = op.left_slot, op.right_slot
        if left >= 0 and right >= 0:
            return [row for row in batch if (row[left] == row[right]) == keep_equal]
        if left >= 0:
            constant = op.right_const
            return [row for row in batch if (row[left] == constant) == keep_equal]
        if right >= 0:
            constant = op.left_const
            return [row for row in batch if (row[right] == constant) == keep_equal]
        return batch if (op.left_const == op.right_const) == keep_equal else []

    def _emit(self, batch: Batch, interpretation: Interpretation) -> list:
        predicate = self.plan.head_predicate
        target = interpretation.relation(predicate)
        extract = self._head_key
        existing: Dict = (
            target.id_keys()
            if target is not None and target.arity == len(self._head_parts)
            else {}
        )
        seen = set()
        add_seen = seen.add
        facts = []
        append = facts.append
        decode = Sequence.from_intern_id
        for row in batch:
            key = extract(row)
            if key in existing or key in seen:
                continue
            add_seen(key)
            append((predicate, tuple(decode(value) for value in key)))
        return facts
