"""The operator ``T_{P,db}`` of Definition 4.

``TOperator.apply(I)`` computes, from scratch, the interpretation

    { theta(head(gamma)) | theta(body(gamma)) ⊆ I, gamma in P ∪ db,
      theta based on Dext_I and defined at gamma }

Database atoms are treated as clauses with an empty body, so ``apply``
always re-derives the database.  The operator is monotonic and continuous
(Lemmas 2 and 3); tests exercise both properties directly through this
class.  The fixpoint drivers in :mod:`repro.engine.fixpoint` use an
accumulating variant for efficiency, which computes the same least fixpoint.
"""

from __future__ import annotations

from typing import List, Optional

from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.evaluation import ClauseEvaluator
from repro.engine.interpretation import Interpretation
from repro.language.clauses import Program


class TOperator:
    """The immediate-consequence operator of a program and a database."""

    def __init__(
        self,
        program: Program,
        database: SequenceDatabase,
        transducers: Optional[TransducerRegistry] = None,
    ):
        self.program = program
        self.database = database
        self.transducers = transducers
        self._evaluators: List[ClauseEvaluator] = [
            ClauseEvaluator(clause, transducers) for clause in program
        ]
        self._database_facts = [
            (atom.predicate, tuple(arg.value for arg in atom.args))  # type: ignore[attr-defined]
            for atom in database.facts()
        ]

    def apply(self, interpretation: Interpretation) -> Interpretation:
        """One application of ``T_{P,db}`` starting from ``interpretation``.

        The result is a *fresh* interpretation: facts of the argument that
        are not re-derivable in one step are not carried over (this matters
        for the model-theory tests, which check ``T(I) ⊆ I`` for models).
        """
        result = Interpretation()
        # Database atoms are bodyless clauses: they are always derived.
        for fact in self._database_facts:
            result.add_fact(fact)
        for evaluator in self._evaluators:
            for fact in evaluator.derive(interpretation):
                result.add_fact(fact)
        return result

    def apply_accumulating(
        self,
        interpretation: Interpretation,
        delta: Optional[Interpretation] = None,
    ) -> Interpretation:
        """Derive new facts and return them as a delta interpretation.

        The argument interpretation is mutated: new facts are added to it.
        When ``delta`` is provided, clause evaluation uses the semi-naive
        restriction for clauses that support it.
        """
        new_delta = Interpretation()
        for fact in self._database_facts:
            if interpretation.add_fact(fact):
                new_delta.add_fact(fact)
        for evaluator in self._evaluators:
            derived = list(evaluator.derive(interpretation, delta))
            for fact in derived:
                if interpretation.add_fact(fact):
                    new_delta.add_fact(fact)
        return new_delta

    def is_fixpoint(self, interpretation: Interpretation) -> bool:
        """True if ``T(I) ⊆ I`` (i.e. ``I`` is a model, Lemma 4)."""
        image = self.apply(interpretation)
        return all(interpretation.contains_fact(fact) for fact in image.facts())
