"""Demand-driven (magic-set-style) query evaluation.

Definition 5 of the paper frames every program as a *query*, yet bottom-up
evaluation materialises the **entire** least fixpoint before a pattern is
matched — and Theorem 2 (finiteness of the fixpoint is undecidable) means
full materialisation can blow resource limits even when the asked query
only needs a tiny, finite slice of the model.  This module computes only
what the query can observe:

* **Adornment** — each argument position of the query pattern is classified
  ``b`` (bound: the term is ground) or ``f`` (free).  The bound positions'
  constant values are the demand the query pushes into the program.
* **Relevance restriction** — only clauses defining predicates the pattern
  transitively depends on (through the predicate dependency graph,
  Definitions 8–9) are evaluated; base facts of irrelevant relations are
  not even loaded.
* **Sideways constant propagation** — when the queried predicate is not
  recursive, the pattern's constants are pushed into the plans of its
  defining clauses: a bare head variable at a bound position is pre-bound
  (:func:`~repro.engine.planner.compile_clause` compiles with it in the
  initial bound set, so body scans over it become composite-index lookups
  instead of full scans), and defining clauses whose head *constant*
  contradicts the pattern are pruned outright.

Exactness.  Sequence Datalog substitutions range over the extended active
domain of the whole interpretation (Definition 4), so a clause whose
derivations observe the domain itself — head-variable enumeration,
sequence-variable comparison fallbacks, unbound indexed-term bases,
constant-rooted domain checks — can derive *different* facts under a
restricted model.  :func:`~repro.engine.planner.compile_clause` flags such
plans (``ClausePlan.domain_sensitive``); when any relevant plan (or the
query pattern's own plan) is sensitive, demand evaluation **falls back** to
sweeping the full program, so answers are always fact-for-fact identical to
full evaluation (the randomized properties in ``tests/test_properties.py``
check this).  For the insensitive case — which covers guarded structural
recursion, the genome programs and the Theorem 1 Turing compilations — the
restricted fixpoint provably agrees with the full one on every relevant
predicate, because each kept derivation depends only on the contents of
relevant relations, which coincide by induction.

Entry points: :func:`compile_demand` / :class:`DemandQuery` (compile once,
evaluate per database), :func:`demand_query` (one shot), surfaced through
``SequenceDatalogEngine.query(demand=True)``, ``DatalogSession.query(...,
demand=True)`` and ``python -m repro.cli run/serve --demand``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.analysis.dependency_graph import build_dependency_graph
from repro.database.database import SequenceDatabase
from repro.engine.bindings import Substitution, TransducerRegistry
from repro.engine.fixpoint import CompiledFixpoint
from repro.engine.interpretation import Fact, Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.planner import compile_program
from repro.engine.query import PreparedQuery, QueryResult
from repro.language.atoms import Atom
from repro.language.clauses import Clause, Program
from repro.language.parser import parse_atom, parse_program
from repro.language.terms import ConstantTerm, SequenceVariable
from repro.sequences import Sequence

BOUND = "b"
FREE = "f"

#: Anything demand evaluation can read base facts from.
FactsLike = Union[SequenceDatabase, Interpretation, Iterable[Fact]]


def adornment_of(pattern: Union[str, Atom]) -> str:
    """The adornment string of a pattern: ``b`` per ground argument, else ``f``.

    >>> adornment_of('rnaseq("acgt", R)')
    'bf'
    """
    atom = parse_atom(pattern) if isinstance(pattern, str) else pattern
    return "".join(
        BOUND if not (arg.sequence_variables() or arg.index_variables()) else FREE
        for arg in atom.args
    )


@dataclass(frozen=True)
class DemandProfile:
    """What the demand compiler decided for one pattern over one program.

    ``relevant`` is the set of predicates whose clauses are swept (and whose
    base facts are loaded); ``restricted`` is False when a domain-sensitive
    relevant plan forced the fall-back to full evaluation
    (``fallback_reason`` says why); ``seeds`` lists the
    ``(variable, constant)`` pairs pushed into defining-clause plans;
    ``pruned_clauses`` counts defining clauses dropped because their head
    constants contradict the pattern; ``unsatisfiable`` marks patterns with
    a statically undefined ground argument (e.g. ``p("ab"[9])``), which
    cannot match anything.
    """

    pattern: Atom
    adornment: str
    relevant: FrozenSet[str]
    restricted: bool
    seeds: Tuple[Tuple[str, str], ...]
    pruned_clauses: int
    clause_count: int
    fallback_reason: Optional[str]
    unsatisfiable: bool

    def describe(self) -> str:
        lines = [f"pattern: {self.pattern}  (adornment: {self.adornment or '-'})"]
        if self.unsatisfiable:
            lines.append("  unsatisfiable: a ground argument is undefined")
            return "\n".join(lines)
        if not self.restricted:
            lines.append(f"  mode: full evaluation ({self.fallback_reason})")
            return "\n".join(lines)
        lines.append(
            f"  mode: restricted to {len(self.relevant)} relevant predicates "
            f"({', '.join(sorted(self.relevant))})"
        )
        lines.append(f"  clauses swept: {self.clause_count}")
        if self.seeds:
            seeded = ", ".join(f"{name}={text!r}" for name, text in self.seeds)
            lines.append(f"  constants pushed into defining clauses: {seeded}")
        if self.pruned_clauses:
            lines.append(
                f"  defining clauses pruned by head constants: {self.pruned_clauses}"
            )
        return "\n".join(lines)


@dataclass
class DemandResult:
    """The materialised per-query slice of the model.

    ``interpretation`` holds exactly the facts of the relevant predicates
    (the full least fixpoint when the profile fell back); match the pattern
    against it with :meth:`DemandQuery.query`.  ``known_predicates`` is the
    strict-mode universe: the program's predicates plus every base relation
    the source database named (even empty or irrelevant ones), so a strict
    query distinguishes typos from predicates that derived nothing.
    """

    interpretation: Interpretation
    profile: DemandProfile
    known_predicates: FrozenSet[str]
    base_facts_loaded: int
    sweeps: int
    elapsed_seconds: float

    @property
    def fact_count(self) -> int:
        return self.interpretation.fact_count()


class DemandQuery:
    """A pattern compiled for demand-driven evaluation over one program.

    Compilation (adornment, relevance closure, pruning, seeding, exactness
    check) happens once in the constructor; :meth:`materialize` then
    evaluates the restricted subprogram over a database and
    :meth:`query` matches the pattern against the slice.
    """

    def __init__(
        self,
        program: Union[str, Program],
        pattern: Union[str, Atom],
        transducers: Optional[TransducerRegistry] = None,
    ):
        self.program = (
            parse_program(program) if isinstance(program, str) else program
        )
        self.program.validate()
        self.transducers = transducers
        self.pattern = parse_atom(pattern) if isinstance(pattern, str) else pattern
        self.prepared = PreparedQuery(self.pattern)

        # ---- adornment: ground positions and their constant values ----
        bound_values: Dict[int, Sequence] = {}
        unsatisfiable = False
        for position, arg in enumerate(self.pattern.args):
            if arg.sequence_variables() or arg.index_variables():
                continue
            value = Substitution().evaluate_sequence(arg)
            if value is None:
                unsatisfiable = True
            else:
                bound_values[position] = value
        adornment = adornment_of(self.pattern)
        predicate = self.pattern.predicate

        clauses = list(self.program)
        clauses_by_head: Dict[str, List[Tuple[int, Clause]]] = {}
        for index, clause in enumerate(clauses):
            clauses_by_head.setdefault(clause.head.predicate, []).append(
                (index, clause)
            )

        def closure(skip: Set[int]) -> Set[str]:
            """Clause-level relevance closure, skipping pruned clauses."""
            relevant = {predicate}
            frontier = [predicate]
            while frontier:
                current = frontier.pop()
                for index, clause in clauses_by_head.get(current, ()):
                    if index in skip:
                        continue
                    for body_predicate in clause.body_predicates():
                        if body_predicate not in relevant:
                            relevant.add(body_predicate)
                            frontier.append(body_predicate)
            return relevant

        # The queried predicate is *recursive-in-relevant* when some swept
        # clause consumes it: its restricted facts would then feed further
        # derivations, so constants may not be pushed into its heads.  Both
        # facts fall out of the predicate dependency graph (Definitions
        # 8-9): relevance is reachability, recursion is self-reachability.
        graph = build_dependency_graph(self.program)
        recursive = graph.is_self_reachable(predicate)

        # ---- sideways constant propagation into the defining clauses ----
        pruned: Set[int] = set()
        clause_seeds: Dict[int, Dict[str, Sequence]] = {}
        if bound_values and not recursive and not unsatisfiable:
            for index, clause in clauses_by_head.get(predicate, ()):
                head = clause.head
                if head.arity != self.pattern.arity:
                    continue
                seeds: Dict[str, Sequence] = {}
                contradicted = False
                for position, value in bound_values.items():
                    head_arg = head.args[position]
                    if isinstance(head_arg, ConstantTerm):
                        if head_arg.value != value:
                            contradicted = True
                            break
                    elif isinstance(head_arg, SequenceVariable):
                        previous = seeds.get(head_arg.name)
                        if previous is not None and previous != value:
                            contradicted = True
                            break
                        seeds[head_arg.name] = value
                    # Indexed or constructive head terms cannot be inverted
                    # statically; the position stays free and the final
                    # pattern match filters.
                if contradicted:
                    pruned.add(index)
                elif seeds:
                    clause_seeds[index] = seeds

        # Relevance is reachability in the dependency graph; pruning removes
        # individual clauses, which the graph cannot express, so the pruned
        # case re-walks the clause level.
        relevant = (
            closure(pruned) if pruned else set(graph.dependencies_of(predicate))
        )
        kept = [
            (index, clause)
            for index, clause in enumerate(clauses)
            if clause.head.predicate in relevant and index not in pruned
        ]
        subprogram = Program(clause for _, clause in kept)
        compile_seeds = {
            position: tuple(sorted(clause_seeds[index]))
            for position, (index, _) in enumerate(kept)
            if index in clause_seeds
        }
        program_plan = compile_program(subprogram, seeds=compile_seeds)

        # ---- exactness: fall back to full evaluation when the restricted
        # model could diverge from the full one (domain sensitivity) ----
        fallback_reason = None
        if not unsatisfiable:
            if self.prepared.plan.domain_sensitive:
                fallback_reason = "the query pattern itself observes the extended domain"
            else:
                for plan in program_plan.program_plans:
                    if plan.domain_sensitive:
                        fallback_reason = (
                            f"relevant clause `{plan.clause}` observes the "
                            "extended domain"
                        )
                        break
        restricted = fallback_reason is None

        if not restricted:
            subprogram = self.program
            program_plan = compile_program(self.program)
            relevant = set(self.program.predicates())
            clause_seeds = {}
            compile_seeds = {}

        executor_seeds: Dict[int, Substitution] = {}
        for position, (index, _) in enumerate(kept):
            values = clause_seeds.get(index)
            if not values or not restricted:
                continue
            substitution = Substitution()
            for name, value in sorted(values.items()):
                substitution = substitution.bind_sequence(name, value)
            executor_seeds[position] = substitution

        self.profile = DemandProfile(
            pattern=self.pattern,
            adornment=adornment,
            relevant=frozenset(relevant),
            restricted=restricted,
            seeds=tuple(
                sorted(
                    {
                        (name, value.text)
                        for values in clause_seeds.values()
                        for name, value in values.items()
                    }
                )
            ),
            pruned_clauses=len(pruned) if restricted else 0,
            clause_count=len(subprogram),
            fallback_reason=fallback_reason,
            unsatisfiable=unsatisfiable,
        )
        self._subprogram = subprogram
        self._program_plan = program_plan
        self._executor_seeds = executor_seeds
        self._pattern_constants = tuple(bound_values.values())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def materialize(
        self, facts: FactsLike, limits: EvaluationLimits = DEFAULT_LIMITS
    ) -> DemandResult:
        """Evaluate the relevant subprogram over the given base facts.

        In restricted mode only facts of relevant predicates are loaded and
        only relevant clause plans are swept; the result is the full least
        fixpoint *restricted to the relevant predicates* (plus the pattern's
        seeding restriction on the queried predicate itself).
        """
        started = time.perf_counter()
        core = CompiledFixpoint(
            self._subprogram,
            self.transducers,
            program_plan=self._program_plan,
            seeds=self._executor_seeds,
        )
        loaded = 0
        known = set(self.program.predicates())
        if isinstance(facts, SequenceDatabase):
            known.update(relation.name for relation in facts)
        if not self.profile.unsatisfiable:
            for predicate, values in _iter_fact_pairs(facts):
                known.add(predicate)
                if self.profile.restricted and predicate not in self.profile.relevant:
                    continue
                if core.add_fact(predicate, values):
                    loaded += 1
            if self._executor_seeds:
                # Seed constants may lie outside the slice's fact-derived
                # domain; adding them keeps index clipping over seeded
                # variables identical to full evaluation.  Only seeded
                # (hence restricted, hence domain-insensitive) plans run
                # here, so the extra domain elements cannot create
                # derivations — in fallback mode the plans may be
                # domain-sensitive and the domain must stay untouched.
                for value in self._pattern_constants:
                    core.interpretation.domain.add(value)
            core.run(limits)
        return DemandResult(
            interpretation=core.interpretation,
            profile=self.profile,
            known_predicates=frozenset(known),
            base_facts_loaded=loaded,
            sweeps=core.sweeps,
            elapsed_seconds=time.perf_counter() - started,
        )

    def query(
        self,
        result: DemandResult,
        strict: bool = False,
        known_predicates: Optional[Iterable[str]] = None,
    ) -> QueryResult:
        """Match the pattern against a previously materialised slice.

        Under ``strict=True`` the known-predicate universe defaults to the
        slice's own (:attr:`DemandResult.known_predicates`), so a
        program-defined predicate that derived nothing yields an empty
        result instead of :class:`~repro.errors.UnknownPredicateError`.
        """
        known = (
            result.known_predicates
            if known_predicates is None
            else set(known_predicates)
        )
        return self.prepared.run(
            result.interpretation, strict=strict, known_predicates=known
        )

    def run(
        self,
        facts: FactsLike,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        strict: bool = False,
        known_predicates: Optional[Iterable[str]] = None,
    ) -> QueryResult:
        """Materialise the slice and match the pattern in one call."""
        return self.query(
            self.materialize(facts, limits),
            strict=strict,
            known_predicates=known_predicates,
        )

    def __repr__(self) -> str:
        mode = "restricted" if self.profile.restricted else "full"
        return (
            f"DemandQuery({self.pattern}, {mode}, "
            f"{len(self.profile.relevant)} relevant predicates)"
        )


def compile_demand(
    program: Union[str, Program],
    pattern: Union[str, Atom],
    transducers: Optional[TransducerRegistry] = None,
) -> DemandQuery:
    """Compile a pattern for demand-driven evaluation over a program."""
    return DemandQuery(program, pattern, transducers)


def demand_query(
    program: Union[str, Program],
    facts: FactsLike,
    pattern: Union[str, Atom],
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
    strict: bool = False,
    known_predicates: Optional[Iterable[str]] = None,
) -> QueryResult:
    """One-shot demand-driven evaluation: compile, materialise, match."""
    return compile_demand(program, pattern, transducers).run(
        facts, limits, strict=strict, known_predicates=known_predicates
    )


def _iter_fact_pairs(facts: FactsLike) -> Iterator[Fact]:
    if isinstance(facts, SequenceDatabase):
        for relation in facts:
            for row in relation:
                yield (relation.name, row)
        return
    if isinstance(facts, Interpretation):
        yield from facts.facts()
        return
    for predicate, values in facts:
        yield (predicate, values)
