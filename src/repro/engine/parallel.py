"""Parallel fixpoint evaluation: wave-scheduled, range-partitioned firings.

:class:`ParallelFixpoint` is the compiled strategy
(:class:`~repro.engine.fixpoint.CompiledFixpoint`) with the work of each
sweep spread over a worker pool:

* **Wave scheduling.**  The dependency strata of the compiled program plan
  form a DAG; strata at the same depth ("wave") cannot observe each other's
  head predicates, so their plans fire concurrently against the wave-start
  state.  Waves keep the bottom-up order between dependent strata, and the
  outer sweep loop keeps recursive strata iterating to quiescence exactly
  like the sequential engine.
* **Range partitioning.**  A firing is expressed as "run the plan with one
  atom position restricted to a window of its relation's append-only row
  store" (:meth:`~repro.engine.planner.PlanExecutor.derive_delta`).  Every
  solution of the plan goes through exactly one row at that position, so a
  window can be split into disjoint sub-windows and fired independently —
  the union of the partial derivations is exactly the full derivation.
  Delta firings partition the :class:`~repro.database.relation.RelationDelta`
  window of each changed body predicate; full firings partition the first
  scan's whole relation.
* **Worker pools.**  Large waves go to a pool of worker *processes*: each
  worker holds a replica interpretation that the coordinator keeps in sync
  by shipping the rows appended since the worker's last sync, serialized as
  plain text tuples — re-interning on arrival makes the replica's
  intern ids consistent with its own table, and the append-only discipline
  makes coordinator row positions valid window coordinates on every
  replica.  Small waves fall back to an in-process thread pool (or run
  inline), avoiding the serialization round-trip when the delta is a
  handful of rows.
* **Determinism of the result.**  Scheduling only changes the *order* of
  monotone, inflationary firings; the least fixpoint is unique, so the
  computed model is fact-for-fact identical to the sequential strategies'
  (randomized equivalence properties in ``tests/test_properties.py``).

Derived facts are merged by the coordinator through the same
version-gated bookkeeping as the sequential engine, so a
:class:`ParallelFixpoint` can also sit inside a
:class:`~repro.engine.session.DatalogSession` and do incremental
maintenance.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence as TypingSequence, Tuple

from repro.database.relation import RelationDelta
from repro.engine.bindings import Substitution, TransducerRegistry
from repro.engine.fixpoint import CompiledFixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.plan import AtomScan, ClausePlan, ProgramPlan
from repro.errors import EvaluationError
from repro.language.clauses import Program
from repro.sequences.sequence import Sequence

#: A unit of parallel work: ``(plan_index, atom_position, start, stop)``.
#: ``atom_position is None`` means an unpartitioned full firing; otherwise
#: the atom at that position is restricted to rows ``[start, stop)`` of its
#: predicate's append-only store.
FiringTask = Tuple[int, Optional[int], int, int]

PARALLEL_MODES = ("auto", "thread", "process")


def _scan_predicate(plan: ClausePlan, atom_position: int) -> Optional[str]:
    """The predicate scanned at ``atom_position`` of a plan (None if absent)."""
    for step in plan.steps:
        if isinstance(step, AtomScan) and step.atom_position == atom_position:
            return step.atom.predicate
    return None


def _first_scan_position(plan: ClausePlan) -> Optional[int]:
    """The first atom scan in plan order — the outermost join loop."""
    for step in plan.steps:
        if isinstance(step, AtomScan):
            return step.atom_position
    return None


def _worker_main(
    program_blob: bytes, task_queue, result_queue, use_kernels: Optional[bool] = None
) -> None:
    """Worker process loop: keep a replica in sync, fire plans on request.

    The replica starts empty and is grown exclusively through ``sync``
    messages, which ship rows in coordinator insertion order — so a row's
    position in the replica's append-only store equals its position in the
    coordinator's, and window coordinates transfer directly.
    ``use_kernels`` mirrors the coordinator's batch-kernel override so both
    sides of a partitioned firing take the same execution path.
    """
    # Under the fork start method another coordinator thread may have held
    # the intern-table lock at fork time; the replica is single-threaded
    # here, so a fresh lock is always safe.
    Sequence._lock = threading.Lock()
    program = pickle.loads(program_blob)
    core = CompiledFixpoint(program, use_kernels=use_kernels)
    interpretation = core.interpretation
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "sync":
            for predicate, rows in message[1]:
                for row in rows:
                    interpretation.add(predicate, row)
            continue
        _, task_id, plan_index, position, start, stop = message
        try:
            executor = core.executors[plan_index]
            if position is None:
                derived = executor.derive(interpretation)
            else:
                predicate = _scan_predicate(core.plans[plan_index], position)
                relation = interpretation.relation(predicate)
                if relation is None:
                    derived = iter(())
                else:
                    view = RelationDelta(relation, start, stop)
                    derived = executor.derive_delta(interpretation, position, view)
            payload = [
                (head, tuple(value.text for value in values))
                for head, values in derived
            ]
            result_queue.put((task_id, payload, None))
        except Exception as error:  # transported back to the coordinator
            result_queue.put((task_id, None, f"{type(error).__name__}: {error}"))


class _ProcessPool:
    """A fixed pool of replica workers with incremental state shipping."""

    def __init__(
        self,
        program_blob: bytes,
        workers: int,
        start_method: Optional[str],
        use_kernels: Optional[bool] = None,
    ):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self._result_queue = context.Queue()
        self._workers = []
        # Workers are created together and synced in lockstep, so one
        # shared high-water mark per predicate describes every replica.
        self._synced: Dict[str, int] = {}
        self._next_task_id = 0
        self.shipped_rows = 0
        for _ in range(workers):
            task_queue = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(program_blob, task_queue, self._result_queue, use_kernels),
                daemon=True,
            )
            process.start()
            self._workers.append((process, task_queue))

    def __len__(self) -> int:
        return len(self._workers)

    def _sync(self, interpretation) -> None:
        """Ship every row the replicas have not seen yet (append-only
        windows).  The text conversion happens once per predicate; the same
        payload object goes to every worker queue."""
        payload = []
        for predicate in interpretation.predicates():
            relation = interpretation.relation(predicate)
            count = len(relation)
            have = self._synced.get(predicate, 0)
            if count > have:
                rows = [
                    tuple(value.text for value in row)
                    for row in RelationDelta(relation, have, count)
                ]
                payload.append((predicate, rows))
                self._synced[predicate] = count
                self.shipped_rows += count - have
        if payload:
            for _, task_queue in self._workers:
                task_queue.put(("sync", payload))

    def dispatch(self, tasks: TypingSequence[FiringTask], interpretation) -> List[list]:
        """Sync the replicas, round-robin the tasks, gather every result."""
        self._sync(interpretation)
        pending = set()
        for position, task in enumerate(tasks):
            task_id = self._next_task_id
            self._next_task_id += 1
            _, task_queue = self._workers[position % len(self._workers)]
            task_queue.put(("fire", task_id) + tuple(task))
            pending.add(task_id)
        batches: List[list] = []
        errors: List[str] = []
        while pending:
            try:
                task_id, payload, error = self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                if any(not process.is_alive() for process, _ in self._workers):
                    raise EvaluationError(
                        "a parallel fixpoint worker process died unexpectedly"
                    ) from None
                continue
            pending.discard(task_id)
            if error is not None:
                errors.append(error)
            else:
                batches.append(payload)
        if errors:
            raise EvaluationError(f"parallel fixpoint worker failed: {errors[0]}")
        return batches

    def close(self) -> None:
        for process, task_queue in self._workers:
            if process.is_alive():
                try:
                    task_queue.put(("stop",))
                except (OSError, ValueError):
                    pass
        for process, _ in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers = []


class ParallelFixpoint(CompiledFixpoint):
    """Compiled fixpoint evaluation over a worker pool.

    Parameters
    ----------
    program:
        The Sequence Datalog program.
    transducers:
        Optional transducer registry.  Registries are not shipped to worker
        processes, so providing one restricts the pool to threads.
    workers:
        Pool size; defaults to the machine's CPU count.  ``1`` runs every
        task inline (sequential semantics at wave granularity).
    mode:
        ``"auto"`` (processes for large waves, threads for small ones),
        ``"thread"`` or ``"process"``.
    process_threshold:
        Minimum number of partitionable rows in a wave before ``auto``
        pays the serialization round-trip of the process pool.
    min_partition_rows:
        Smallest window worth splitting; below it a firing stays one task.
    start_method:
        ``multiprocessing`` start method (defaults to ``fork`` when the
        platform offers it, else ``spawn``).
    """

    __slots__ = (
        "workers", "mode", "process_threshold", "min_partition_rows",
        "_start_method", "_program_blob", "_process_ok", "_waves",
        "_thread_pool", "_process_pool", "counters",
    )

    def __init__(
        self,
        program: Program,
        transducers: Optional[TransducerRegistry] = None,
        workers: Optional[int] = None,
        mode: str = "auto",
        process_threshold: int = 256,
        min_partition_rows: int = 8,
        start_method: Optional[str] = None,
        program_plan: Optional[ProgramPlan] = None,
        seeds: Optional[Dict[int, Substitution]] = None,
        use_kernels: Optional[bool] = None,
    ):
        if mode not in PARALLEL_MODES:
            raise EvaluationError(
                f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
            )
        super().__init__(program, transducers, program_plan, seeds, use_kernels)
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.mode = mode
        self.process_threshold = process_threshold
        self.min_partition_rows = max(1, min_partition_rows)
        self._start_method = start_method
        # Replica workers rebuild their state from (program, shipped rows)
        # alone, so prebuilt plans, executor seeds and transducer registries
        # all rule the process pool out; threads share the coordinator's
        # objects and support everything.
        self._program_blob: Optional[bytes] = None
        self._process_ok = transducers is None and program_plan is None and not seeds
        if self._process_ok:
            try:
                self._program_blob = pickle.dumps(program)
            except Exception:
                self._process_ok = False
        if mode == "process" and not self._process_ok:
            raise EvaluationError(
                "process-mode parallel evaluation needs a picklable program "
                "without transducers or prebuilt plans; use mode='thread'"
            )
        self._waves = self._compute_waves()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[_ProcessPool] = None
        self.counters = {
            "waves_fired": 0,
            "tasks": 0,
            "inline_waves": 0,
            "thread_waves": 0,
            "process_waves": 0,
            "shipped_rows": 0,
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _compute_waves(self) -> Tuple[Tuple[int, ...], ...]:
        """Group the scheduled strata into waves of mutually independent ones.

        Stratum ``s`` depends on stratum ``t`` when some plan headed in ``s``
        reads a predicate of ``t``; the linearized component order guarantees
        ``t <= s``.  ``level(s) = 1 + max(level(dependencies))`` puts two
        strata in the same wave exactly when no dependency path connects
        them, so their plans can only read relations no plan of the wave
        writes — firing them concurrently against the wave-start state is
        indistinguishable from any sequential order.
        """
        strata = self.program_plan.strata
        schedule = self.program_plan.schedule
        stratum_of = {
            predicate: index
            for index, component in enumerate(strata)
            for predicate in component
        }
        levels: List[int] = []
        for index, plan_indexes in enumerate(schedule):
            depends_on = set()
            for plan_index in plan_indexes:
                for predicate in self.plans[plan_index].body_predicates():
                    target = stratum_of.get(predicate)
                    if target is not None and target != index:
                        depends_on.add(target)
            level = 0
            for target in depends_on:
                if target < len(levels):
                    level = max(level, levels[target] + 1)
            levels.append(level)
        waves: Dict[int, List[int]] = {}
        for index, plan_indexes in enumerate(schedule):
            waves.setdefault(levels[index], []).extend(plan_indexes)
        return tuple(
            tuple(waves[level]) for level in sorted(waves) if waves[level]
        )

    @property
    def waves(self) -> Tuple[Tuple[int, ...], ...]:
        """The wave schedule (tuples of plan indexes), for tests and explain."""
        return self._waves

    # ------------------------------------------------------------------
    # Task construction
    # ------------------------------------------------------------------
    def _partition(
        self, plan_index: int, position: int, start: int, stop: int
    ) -> List[FiringTask]:
        rows = stop - start
        if rows <= 0:
            return []
        parts = min(self.workers, max(1, rows // self.min_partition_rows))
        chunk = (rows + parts - 1) // parts
        tasks = []
        cursor = start
        while cursor < stop:
            upper = min(cursor + chunk, stop)
            tasks.append((plan_index, position, cursor, upper))
            cursor = upper
        return tasks

    def _tasks_for(self, plan_index: int, mode: str) -> List[FiringTask]:
        plan = self.plans[plan_index]
        if mode == "full":
            position = _first_scan_position(plan)
            if position is None:
                # Bodyless or scan-free plans: nothing to partition over.
                return [(plan_index, None, 0, 0)]
            predicate = _scan_predicate(plan, position)
            relation = self.interpretation.relation(predicate)
            if relation is None or len(relation) == 0:
                # Every solution needs a row at this scan; there are none.
                return []
            return self._partition(plan_index, position, 0, len(relation))
        tasks: List[FiringTask] = []
        views = self._delta_views(plan_index)
        for step in plan.steps:
            if not isinstance(step, AtomScan):
                continue
            view = views.get(step.atom.predicate)
            if view is None or not len(view):
                continue
            tasks.extend(
                self._partition(plan_index, step.atom_position, view.start, view.stop)
            )
        return tasks

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _run_task_local(self, task: FiringTask) -> list:
        plan_index, position, start, stop = task
        executor = self.executors[plan_index]
        if position is None:
            return list(executor.derive(self.interpretation))
        predicate = _scan_predicate(self.plans[plan_index], position)
        relation = self.interpretation.relation(predicate)
        if relation is None:
            return []
        view = RelationDelta(relation, start, stop)
        return list(executor.derive_delta(self.interpretation, position, view))

    def _choose_backend(self, total_rows: int, task_count: int) -> str:
        if self.workers <= 1:
            return "inline"
        if self.mode == "thread":
            return "thread"
        if self.mode == "process":
            return "process"
        if task_count <= 1 or total_rows < self.min_partition_rows:
            return "inline"
        if self._process_ok and total_rows >= self.process_threshold:
            return "process"
        return "thread"

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-parallel",
            )
        return self._thread_pool

    def _ensure_process_pool(self) -> _ProcessPool:
        if self._process_pool is None:
            assert self._program_blob is not None
            self._process_pool = _ProcessPool(
                self._program_blob, self.workers, self._start_method, self.use_kernels
            )
        return self._process_pool

    # ------------------------------------------------------------------
    # The sweep loop
    # ------------------------------------------------------------------
    def _fire_wave(
        self, wave: Tuple[int, ...], limits: EvaluationLimits, iteration: int
    ) -> int:
        firing = []
        for plan_index in wave:
            mode = self._firing_mode(plan_index)
            if mode is not None:
                firing.append((plan_index, mode))
        if not firing:
            return 0
        # Keep the pre-wave bookkeeping so a failed dispatch can roll back:
        # without it, an executor failure (e.g. a dead worker process) would
        # leave the plans marked up-to-date and a resident session would
        # silently skip the windows they never actually fired over.
        saved = [
            (
                plan_index,
                self._last_versions[plan_index],
                self._last_domain[plan_index],
            )
            for plan_index, _ in firing
        ]
        tasks: List[FiringTask] = []
        for plan_index, mode in firing:
            tasks.extend(self._tasks_for(plan_index, mode))
            # The observation point is the wave-start state: everything the
            # wave derives lands at higher versions and counts as delta for
            # the next sweep.
            self._observe(plan_index)
        if not tasks:
            return 0
        total_rows = sum(
            stop - start for _, position, start, stop in tasks if position is not None
        )
        backend = self._choose_backend(total_rows, len(tasks))
        self.counters["waves_fired"] += 1
        self.counters["tasks"] += len(tasks)
        self.counters[f"{backend}_waves"] += 1
        try:
            if backend == "process":
                batches = self._ensure_process_pool().dispatch(
                    tasks, self.interpretation
                )
            elif backend == "thread":
                batches = list(
                    self._ensure_thread_pool().map(self._run_task_local, tasks)
                )
            else:
                batches = [self._run_task_local(task) for task in tasks]
            added = 0
            for batch in batches:
                added += self._merge(batch, limits, iteration)
            return added
        except BaseException:
            # Re-arm the wave: replayed derivations deduplicate on merge, so
            # restoring the older observation points is always safe.
            for plan_index, versions, domain in saved:
                self._last_versions[plan_index] = versions
                self._last_domain[plan_index] = domain
            raise

    def _sweep(self, limits: EvaluationLimits, iteration: int) -> int:
        """One wave-concurrent pass over every plan (see the module
        docstring); the shared :meth:`CompiledFixpoint.run` loop drives it,
        so limit accounting and history semantics cannot drift from the
        sequential strategy's."""
        sweep_added = 0
        for wave in self._waves:
            sweep_added += self._fire_wave(wave, limits, iteration)
        return sweep_added

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def parallel_stats(self) -> Dict[str, int]:
        """Execution counters plus pool facts (serving diagnostics)."""
        stats = dict(self.counters)
        if self._process_pool is not None:
            stats["shipped_rows"] = self._process_pool.shipped_rows
        stats["workers"] = self.workers
        stats["process_pool_live"] = int(self._process_pool is not None)
        return stats

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self.counters["shipped_rows"] = self._process_pool.shipped_rows
            self._process_pool.close()
            self._process_pool = None

    def __enter__(self) -> ParallelFixpoint:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # safety net; pools are daemonic anyway
        try:
            self.close()
        except Exception:
            pass
