"""A thread-safe, snapshot-isolated serving layer over a resident model.

:class:`DatalogServer` turns the single-caller
:class:`~repro.engine.session.DatalogSession` into a concurrent server:

* **Snapshot-isolated reads.**  Every query pins a :class:`ModelSnapshot`
  — an immutable view of the resident model built from zero-copy
  :class:`~repro.database.relation.RelationDelta` windows ``[0, n)`` over
  the append-only relation stores, plus a copy of the extended domain
  taken at publication time.  Because relations only ever append, a pinned
  window stays valid (and unchanged) while maintenance inserts rows behind
  it: two queries against the same snapshot always agree, no matter how
  much maintenance ran in between.
* **Serialized maintenance with read admission.**  :meth:`add_facts` runs
  under a writer lock, mutating the session's resident model in place;
  concurrent queries keep reading the last *published* snapshot and never
  observe a half-maintained state.  A new snapshot is published atomically
  only after the maintenance run restored the least-fixpoint invariant.
  A maintenance run that fails on a resource limit poisons the underlying
  session; the failed run's partial facts are never published, and every
  subsequent call — from any thread — raises
  :class:`~repro.errors.SessionPoisonedError`.
* **Batched query execution.**  Results are cached per
  ``(snapshot generation, canonical pattern)`` in an LRU, identical
  in-flight queries are coalesced onto one execution (followers wait on the
  leader's result instead of recomputing it), and :meth:`query_batch`
  deduplicates a whole batch before executing the distinct patterns once
  each.  Under concurrent clients with overlapping workloads this is where
  aggregate throughput scaling comes from (measured by
  ``benchmarks/bench_parallel.py``).

The CLI exposes the server through ``python -m repro.cli serve --workers N``;
the programmatic surface is :meth:`repro.SequenceDatalogEngine.serve`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.database.database import SequenceDatabase
from repro.database.relation import RelationDelta
from repro.engine.bindings import TransducerRegistry
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.query import QueryResult, canonical_pattern, output_relation
from repro.engine.session import DatalogSession, FactsLike, MaintenanceReport
from repro.errors import StorageError, UnknownPredicateError, ValidationError
from repro.language.atoms import Atom
from repro.language.clauses import Program
from repro.sequences import ExtendedDomain


class ModelSnapshot:
    """An immutable view of the resident model at one publication point.

    Exposes the read surface :class:`~repro.engine.query.PreparedQuery`
    executes against (``relation()`` and ``domain``), backed by zero-copy
    append-only windows — pinning a snapshot copies no rows.
    """

    __slots__ = ("generation", "_views", "_domain", "_fact_count")

    def __init__(
        self,
        generation: int,
        views: Dict[str, RelationDelta],
        domain: ExtendedDomain,
        fact_count: int,
    ):
        self.generation = generation
        self._views = views
        self._domain = domain
        self._fact_count = fact_count

    @classmethod
    def of(cls, generation: int, interpretation: Interpretation) -> ModelSnapshot:
        """Pin the interpretation's current state.

        Must be called while no maintenance is mutating the interpretation
        (the server publishes under its writer lock).
        """
        views = {}
        for predicate in interpretation.predicates():
            relation = interpretation.relation(predicate)
            views[predicate] = RelationDelta(relation, 0, len(relation))
        return cls(
            generation, views, interpretation.domain.copy(),
            interpretation.fact_count(),
        )

    def relation(self, predicate: str) -> Optional[RelationDelta]:
        return self._views.get(predicate)

    @property
    def domain(self) -> ExtendedDomain:
        return self._domain

    def predicates(self) -> Tuple[str, ...]:
        return tuple(sorted(self._views))

    def tuples(self, predicate: str) -> frozenset:
        view = self._views.get(predicate)
        if view is None:
            return frozenset()
        return frozenset(view)

    def fact_count(self) -> int:
        return self._fact_count

    def __repr__(self) -> str:
        return (
            f"ModelSnapshot(generation={self.generation}, "
            f"{self._fact_count} facts, {len(self._views)} relations)"
        )


class _InFlight:
    """A query execution other threads can wait on (request coalescing)."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[QueryResult] = None
        self.error: Optional[BaseException] = None


class DatalogServer:
    """Serve one program's resident model to many concurrent clients.

    Parameters
    ----------
    program:
        Program text, a parsed :class:`~repro.language.clauses.Program`, or
        an existing :class:`DatalogSession` to wrap (it is materialised up
        front either way: the server always publishes full fixpoints).
        When wrapping a session, it is used exactly as configured — passing
        ``database``/``limits``/``transducers``/``workers`` alongside one
        is rejected instead of silently ignored.
    database:
        Initial database (only when the server builds the session).
    limits, transducers:
        Forwarded to the session when one is built here.
    workers:
        Maintenance worker-pool size, forwarded to the session (parallel
        fixpoint maintenance); also recorded in :meth:`stats`.
    result_cache_size:
        Capacity of the per-snapshot query-result LRU.
    data_dir:
        When given (and the server builds the session), the session is
        opened through :func:`repro.storage.open_session`: state is
        recovered from the directory, every batch runs the durable
        write-ahead commit protocol, background checkpoints fire on the
        store's row/segment thresholds, and the server's generation
        counter *resumes from the recovered one* — generations are
        monotone across restarts.  Wrapping an already-durable session
        works too (its store is picked up); passing ``data_dir``
        alongside a session is rejected like the other build options.
    storage_options:
        Forwarded to :class:`repro.storage.DurableStore` (thresholds,
        segment size, fsync policy) when ``data_dir`` is given.
    """

    def __init__(
        self,
        program: Union[str, Program, DatalogSession],
        database: Optional[Union[SequenceDatabase, Mapping[str, Iterable]]] = None,
        limits: Optional[EvaluationLimits] = None,
        transducers: Optional[TransducerRegistry] = None,
        workers: Optional[int] = None,
        result_cache_size: int = 1024,
        data_dir: Optional[str] = None,
        storage_options: Optional[Dict[str, object]] = None,
    ):
        if isinstance(program, DatalogSession):
            ignored = [
                name
                for name, value in (
                    ("database", database), ("limits", limits),
                    ("transducers", transducers), ("workers", workers),
                    ("data_dir", data_dir),
                    ("storage_options", storage_options),
                )
                if value is not None
            ]
            if ignored:
                raise ValidationError(
                    "DatalogServer(session) uses the session exactly as "
                    f"configured; {', '.join(ignored)} would be ignored — "
                    "pass them only when the server builds the session"
                )
            self._session = program
            # Report the wrapped session's actual maintenance pool, if any.
            workers = getattr(self._session._core, "workers", None)
        elif data_dir is not None:
            # Imported lazily: repro.storage imports this module's sibling.
            from repro.storage import open_session

            self._session = open_session(
                program,
                data_dir,
                database=database,
                limits=limits if limits is not None else DEFAULT_LIMITS,
                transducers=transducers,
                workers=workers,
                storage_options=storage_options,
            )
        else:
            self._session = DatalogSession(
                program,
                database=database,
                limits=limits if limits is not None else DEFAULT_LIMITS,
                transducers=transducers,
                workers=workers,
            )
        self.workers = workers
        self._write_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        # Publication signal: every snapshot publish notifies this
        # condition (read-your-writes waits) and calls the registered
        # listeners under the writer lock (the replication hub records
        # per-generation base-fact offsets there).
        self._publish_condition = threading.Condition()
        self._publish_listeners: List[Callable[[int, DatalogSession], None]] = []
        self._results: OrderedDict[Tuple[int, str, bool], QueryResult] = OrderedDict()
        self._result_cache_size = max(1, result_cache_size)
        self._inflight: Dict[Tuple[int, str, bool], _InFlight] = {}
        # Raw pattern text -> (atom, canonical key).  Parsing is the most
        # expensive part of a cache *hit*, so hits memoise it away: reads
        # are lock-free dict lookups (atomic under the GIL), inserts go
        # through the cache lock.  Bounded by eviction below.
        self._patterns: Dict[str, Tuple[Atom, str]] = {}
        # A durable session resumes the persisted generation counter: it
        # advances on exactly the condition _publish_if_advanced does (a
        # batch that grew the model), so the two stay in lockstep and a
        # restarted server publishes generations the old one never used.
        store = self._session.storage
        self._generation = store.generation if store is not None else 0
        self._queries_served = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._batch_deduped = 0
        # Publishing the first snapshot materialises a lazy session; from
        # here on the server invariantly serves full fixpoints.
        self._snapshot = ModelSnapshot.of(self._generation, self._session.interpretation)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> ModelSnapshot:
        """The last published consistent snapshot (pin it by keeping the ref)."""
        return self._snapshot

    @property
    def generation(self) -> int:
        """Publication counter; grows by one per successful maintenance run."""
        return self._snapshot.generation

    @property
    def poisoned(self) -> bool:
        return self._session.poisoned

    # ------------------------------------------------------------------
    # Maintenance (serialized writers)
    # ------------------------------------------------------------------
    def add_facts(self, facts: FactsLike) -> MaintenanceReport:
        """Insert base facts and publish a new consistent snapshot.

        Writers are serialized by a lock; readers are *not* blocked — they
        keep pinning the previous snapshot until the new one is published,
        which happens only after the maintenance run converged.

        Failure semantics mirror the session's: a malformed *container*
        changes nothing and publishes nothing; a fact rejected mid-batch
        (an arity clash) leaves the earlier facts of the batch in — the
        session restores the fixpoint invariant for them before the error
        propagates, and the server publishes that recovered state so reads
        never diverge from the resident model.  A resource-limit failure
        poisons the session and publishes nothing; every later call, from
        any thread, raises :class:`~repro.errors.SessionPoisonedError`.

        A batch of facts that are all already present changes nothing and
        publishes nothing either — the generation stays put, so the warm
        result cache survives replayed (at-least-once) ingestion.
        """
        report, _ = self.add_facts_published(facts)
        return report

    def add_facts_published(
        self, facts: FactsLike
    ) -> Tuple[MaintenanceReport, int]:
        """:meth:`add_facts` plus the generation observed under the lock.

        The returned generation names a published snapshot that contains
        this call's facts — read while still holding the writer lock, so a
        concurrent writer cannot slip a newer generation in between (the
        API layer labels its responses with it).
        """
        with self._write_lock:
            try:
                report = self._session.add_facts(facts)
            except BaseException:
                self._publish_if_advanced()
                raise
            self._publish_if_advanced()
            return report, self._generation

    def _publish_if_advanced(self) -> None:
        """Publish the resident model iff it moved past the last published
        snapshot (writer lock held).

        Relations are append-only, so *any* change strictly grows the fact
        count — an unchanged count means a bit-identical model, and
        re-publishing it would only wipe the warm per-generation result
        cache.  A poisoned session (partial fixpoint) is never published.
        """
        if self._session.poisoned:
            return
        interpretation = self._session._core.interpretation
        if interpretation.fact_count() != self._snapshot.fact_count():
            self._generation += 1
            self._snapshot = ModelSnapshot.of(self._generation, interpretation)
            self._announce_publish()

    def _announce_publish(self) -> None:
        """Run publish listeners and wake generation waiters (writer lock held)."""
        for listener in self._publish_listeners:
            listener(self._generation, self._session)
        with self._publish_condition:
            self._publish_condition.notify_all()

    def add_publish_listener(
        self, listener: Callable[[int, DatalogSession], None]
    ) -> None:
        """Register a callback fired on every publish, under the writer lock.

        The callback receives ``(generation, session)`` with the session
        quiescent — it may read (not mutate) session state consistently
        with the just-published snapshot.  It is fired once synchronously
        with the *current* state before registration takes effect: the one
        atomic point where the caller can anchor its bookkeeping
        (generation floor, base-fact offsets) exactly where the future
        callbacks will continue.
        """
        with self._write_lock:
            listener(self._generation, self._session)
            self._publish_listeners.append(listener)

    def wait_for_generation(self, generation: int, timeout: float) -> bool:
        """Block until the published generation reaches ``generation``.

        Returns True as soon as the bound is met (immediately when it
        already is), False when ``timeout`` seconds pass first.  This is
        the read-your-writes primitive: a client that wrote at generation
        G on the leader waits for G here before reading from a follower.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._publish_condition:
            while self._snapshot.generation < generation:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._publish_condition.wait(remaining)
        return True

    def apply_replicated(
        self,
        facts: FactsLike,
        generation: int,
        expected_facts: Optional[int] = None,
    ) -> MaintenanceReport:
        """Apply one replicated generation and publish it *as* ``generation``.

        The replication path for followers: the batch runs through the
        session's ordinary incremental maintenance, but the published
        snapshot takes the leader's generation number instead of the local
        counter, keeping leader and follower generations in lockstep.
        ``expected_facts`` (the leader's model size at that generation)
        is verified after the maintenance run — a mismatch means the
        streams diverged and raises :class:`~repro.errors.StorageError`'s
        sibling :class:`~repro.errors.ReplicationError` rather than
        serving wrong data quietly.
        """
        from repro.errors import ReplicationError

        with self._write_lock:
            if generation <= self._generation:
                raise ReplicationError(
                    f"replicated generation {generation} is not ahead of the "
                    f"published generation {self._generation}"
                )
            report = self._session.add_facts(facts)
            interpretation = self._session._core.interpretation
            if (
                expected_facts is not None
                and interpretation.fact_count() != expected_facts
            ):
                raise ReplicationError(
                    f"generation {generation} applied to {interpretation.fact_count()} "
                    f"facts but the leader published {expected_facts} — the "
                    "replica has diverged and must re-bootstrap"
                )
            self._generation = generation
            self._snapshot = ModelSnapshot.of(generation, interpretation)
            self._announce_publish()
            return report

    def capture_model(
        self,
    ) -> Tuple[int, Dict[str, RelationDelta], List, int]:
        """Pin ``(generation, relation views, base facts, fact count)`` atomically.

        Taken under the writer lock so the four pieces describe one
        consistent published model; the views are zero-copy append-only
        windows, safe to serialize off-thread afterwards (the same capture
        discipline the storage checkpointer uses).
        """
        with self._write_lock:
            interpretation = self._session._core.interpretation
            views = {}
            for predicate in interpretation.predicates():
                relation = interpretation.relation(predicate)
                views[predicate] = RelationDelta(relation, 0, len(relation))
            return (
                self._generation,
                views,
                list(self._session._base_facts),
                interpretation.fact_count(),
            )

    def add_fact(self, predicate: str, *values) -> MaintenanceReport:
        return self.add_facts([(predicate, values)])

    # ------------------------------------------------------------------
    # Queries (concurrent readers)
    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        # Surface poisoning with the session's own error message.
        self._session._require_usable()

    def _canonical(self, pattern: Union[str, Atom]) -> Tuple[Atom, str]:
        if isinstance(pattern, str):
            cached = self._patterns.get(pattern)
            if cached is not None:
                return cached
        atom, canonical = canonical_pattern(pattern)
        if isinstance(pattern, str):
            with self._cache_lock:
                if len(self._patterns) >= 4 * self._result_cache_size:
                    self._patterns.clear()
                self._patterns[pattern] = (atom, canonical)
        return atom, canonical

    def _known_predicates(self, snapshot: ModelSnapshot) -> set:
        known = set(self._session._program_predicates)
        known.update(snapshot.predicates())
        return known

    def _execute(
        self, atom: Atom, snapshot: ModelSnapshot, strict: bool
    ) -> QueryResult:
        if strict and snapshot.relation(atom.predicate) is None:
            if atom.predicate not in self._known_predicates(snapshot):
                raise UnknownPredicateError(
                    f"predicate {atom.predicate!r} is not defined by any rule "
                    "or fact (unknown predicate; pass strict=False to treat "
                    "it as empty)"
                )
        # session.prepare's LRU is not thread-safe; the cache lock also
        # covers it (preparation is rare once the cache is warm).
        with self._cache_lock:
            prepared = self._session.prepare(atom)
        return prepared.run(snapshot)

    def query(
        self,
        pattern: Union[str, Atom],
        strict: bool = False,
        snapshot: Optional[ModelSnapshot] = None,
    ) -> QueryResult:
        """Answer a pattern against a consistent snapshot of the model.

        Thread-safe.  ``snapshot`` pins an explicit (older) snapshot; by
        default the last published one is used.  Results are served from
        the per-snapshot LRU when possible, and identical concurrent
        executions are coalesced onto one computation.
        """
        self._check_usable()
        pinned = snapshot if snapshot is not None else self._snapshot
        atom, canonical = self._canonical(pattern)
        return self._query(atom, canonical, strict, pinned)

    def _query(
        self,
        atom: Atom,
        canonical: str,
        strict: bool,
        pinned: ModelSnapshot,
    ) -> QueryResult:
        key = (pinned.generation, canonical, strict)
        with self._cache_lock:
            self._queries_served += 1
            cached = self._results.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._results.move_to_end(key)
                return cached
            leader = self._inflight.get(key)
            if leader is None:
                leader = _InFlight()
                self._inflight[key] = leader
                is_leader = True
            else:
                self._coalesced += 1
                is_leader = False
        if not is_leader:
            leader.event.wait()
            if leader.error is not None:
                raise leader.error
            assert leader.result is not None
            return leader.result
        try:
            result = self._execute(atom, pinned, strict)
        except BaseException as error:
            leader.error = error
            raise
        else:
            leader.result = result
            with self._cache_lock:
                self._results[key] = result
                self._results.move_to_end(key)
                while len(self._results) > self._result_cache_size:
                    self._results.popitem(last=False)
            return result
        finally:
            with self._cache_lock:
                self._inflight.pop(key, None)
            leader.event.set()

    def query_batch(
        self,
        patterns: Iterable[Union[str, Atom]],
        strict: bool = False,
    ) -> List[QueryResult]:
        """Answer many patterns against ONE pinned snapshot.

        The whole batch sees the same consistent state even if maintenance
        runs mid-batch, and duplicate patterns within the batch execute
        once.  Results come back in input order.
        """
        self._check_usable()
        pinned = self._snapshot
        ordered: List[str] = []
        atoms: Dict[str, Atom] = {}
        for pattern in patterns:
            atom, canonical = self._canonical(pattern)
            if canonical not in atoms:
                atoms[canonical] = atom
            else:
                with self._cache_lock:
                    self._batch_deduped += 1
            ordered.append(canonical)
        answers = {
            canonical: self._query(atom, canonical, strict, pinned)
            for canonical, atom in atoms.items()
        }
        return [answers[canonical] for canonical in ordered]

    def output(self, predicate: str = "output") -> List[str]:
        """The ``output`` relation of the current snapshot, as plain strings."""
        self._check_usable()
        return output_relation(self._snapshot, predicate)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    @property
    def session(self) -> DatalogSession:
        """The wrapped session (single-caller API; do not race it)."""
        return self._session

    @property
    def program(self) -> Program:
        """The served program (the API layer's ``explain`` reads it)."""
        return self._session.program

    @property
    def storage(self):
        """The session's :class:`~repro.storage.DurableStore`, if any."""
        return self._session.storage

    @property
    def durable(self) -> bool:
        return self._session.storage is not None

    def checkpoint(self) -> str:
        """Write a snapshot of the current published model, synchronously.

        Takes the writer lock so the capture cannot race maintenance;
        readers are unaffected (they keep pinning published snapshots).
        """
        store = self._session.storage
        if store is None:
            raise StorageError(
                "this server has no durable storage attached "
                "(build it with data_dir=...)"
            )
        with self._write_lock:
            return store.checkpoint()

    def stats(self) -> Dict[str, object]:
        """Session diagnostics plus the server's concurrency counters.

        Taken under the writer lock: the session's own stats iterate the
        live interpretation, which only maintenance mutates — excluding it
        keeps this the one read path that may touch unpinned state.
        """
        with self._write_lock:
            stats = self._session.stats()
        with self._cache_lock:
            stats["server"] = {
                "generation": self._generation,
                "snapshot_facts": self._snapshot.fact_count(),
                "queries_served": self._queries_served,
                "result_cache": {
                    "size": len(self._results),
                    "capacity": self._result_cache_size,
                    "hits": self._cache_hits,
                },
                "coalesced_queries": self._coalesced,
                "batch_deduped": self._batch_deduped,
                "workers": self.workers,
            }
        return stats

    def close(self) -> None:
        self._session.close()

    def __enter__(self) -> DatalogServer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DatalogServer(generation={self._generation}, "
            f"{self._snapshot.fact_count()} facts, "
            f"{self._queries_served} queries served)"
        )
