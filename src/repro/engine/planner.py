"""Clause compilation: from clauses to executable join plans.

:func:`compile_clause` performs at compile time exactly the search-node
decision that ``ClauseEvaluator._choose_literal`` performs at run time.
This is possible because the runtime choice depends only on *which*
variables are bound, and every kind of step binds a fixed set of variables
on every surviving branch:

* matching an atom binds all of its sequence and index variables (bare
  variables directly, indexed-term bases and index variables by the finite
  enumerations of the matcher);
* a binding equality binds its one bare variable;
* a filter comparison binds nothing;
* the enumeration fallback binds every variable of its comparison.

Simulating the greedy choice over this abstract "bound set" therefore
yields the same literal order the backtracking evaluator would discover at
every node, collapsed into a single static plan with the index columns for
each scan chosen up front.

:class:`PlanExecutor` runs a plan against an interpretation.  It reuses
the shared matching helpers of :mod:`repro.engine.evaluation`, so the
compiled path and the naive reference share one implementation of the
paper's matching semantics (Section 3.2) and cannot drift apart.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, Union

from repro.analysis.dependency_graph import build_dependency_graph
from repro.engine import kernels
from repro.engine.bindings import Substitution, TransducerRegistry
from repro.engine.evaluation import emit_heads, match_args
from repro.engine.interpretation import Fact, Interpretation
from repro.engine.plan import (
    AtomScan,
    BindEquality,
    ClausePlan,
    CompareFilter,
    EnumerateComparison,
    HeadPlan,
    PlanStep,
    ProgramPlan,
)
from repro.database.relation import RelationDelta, SequenceRelation
from repro.language.atoms import Atom, BodyLiteral, Comparison, TrueLiteral
from repro.language.clauses import Clause, Program
from repro.language.terms import (
    IndexSum,
    IndexVariable,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
)


def clause_is_delta_safe(clause: Clause) -> bool:
    """True if the semi-naive delta restriction is complete for the clause.

    A clause is delta-safe when it has at least one body atom, all of its
    sequence variables are guarded and all of its index variables occur in
    body atoms; for such clauses new derivations can only arise from new
    facts, never from mere growth of the extended active domain.
    """
    atoms = clause.body_atoms()
    if not atoms:
        return False
    if not clause.is_guarded():
        return False
    atom_index_vars: Set[str] = set()
    for atom in atoms:
        atom_index_vars |= atom.index_variables()
    return clause.index_variables() <= atom_index_vars


class _BoundSet:
    """The statically-known set of bound variables during compilation."""

    __slots__ = ("sequences", "indexes")

    def __init__(self) -> None:
        self.sequences: Set[str] = set()
        self.indexes: Set[str] = set()

    def covers_term(self, term: SequenceTerm) -> bool:
        return (
            term.sequence_variables() <= self.sequences
            and term.index_variables() <= self.indexes
        )

    def covers_literal(self, literal: BodyLiteral) -> bool:
        return (
            literal.sequence_variables() <= self.sequences
            and literal.index_variables() <= self.indexes
        )


def _binding_side(
    comparison: Comparison, bound: _BoundSet
) -> Optional[Tuple[str, SequenceTerm]]:
    """Mirror of ``ClauseEvaluator._binding_side`` over the static bound set."""
    if not comparison.is_equality():
        return None
    left, right = comparison.left, comparison.right
    if (
        isinstance(left, SequenceVariable)
        and left.name not in bound.sequences
        and bound.covers_term(right)
    ):
        return (left.name, right)
    if (
        isinstance(right, SequenceVariable)
        and right.name not in bound.sequences
        and bound.covers_term(left)
    ):
        return (right.name, left)
    return None


def _choose(
    pending: List[Tuple[BodyLiteral, int]], bound: _BoundSet
) -> int:
    """Static mirror of ``ClauseEvaluator._choose_literal``."""
    best_atom = -1
    best_atom_score = -1
    binder = -1
    for position, (literal, _) in enumerate(pending):
        if bound.covers_literal(literal):
            return position
        if isinstance(literal, Comparison) and binder < 0:
            if _binding_side(literal, bound) is not None:
                binder = position
        if isinstance(literal, Atom):
            score = sum(1 for arg in literal.args if bound.covers_term(arg))
            if score > best_atom_score:
                best_atom_score = score
                best_atom = position
    if best_atom >= 0:
        return best_atom
    if binder >= 0:
        return binder
    return 0


def _term_domain_rooted(term: SequenceTerm) -> bool:
    """True if the term's value is guaranteed to lie in the extended domain.

    A bare variable carries a domain value by construction; an indexed term
    over a variable base extracts a contiguous subsequence of one, and the
    extended domain is closed under contiguous subsequences (Definition 2).
    Constant-rooted terms (a constant, or an indexed term over a constant
    base) evaluate to values that may or may not be in a given domain, so
    operations involving them observe the domain itself.
    """
    if isinstance(term, SequenceVariable):
        return True
    if isinstance(term, IndexedTerm):
        return isinstance(term.base, SequenceVariable)
    return False


def _indexed_subterms(atom: Atom) -> Iterator[IndexedTerm]:
    """Every indexed term occurring (possibly nested) in an atom's arguments."""
    pending: List[SequenceTerm] = list(atom.args)
    while pending:
        term = pending.pop()
        if isinstance(term, IndexedTerm):
            yield term
        for attribute in ("parts", "args"):
            nested = getattr(term, attribute, None)
            if nested is not None:
                pending.extend(nested)


def _index_expression_clips(expression, unbound: Set[str]) -> bool:
    """True if defined assignments to the expression's unbound variables are
    bounded by the base sequence's length.

    ``N`` and ``N + c`` are monotone and at least ``N``, so an assignment
    beyond ``len(base) + 1`` makes the indexed term undefined — the
    domain-wide integer enumeration self-clips.  Subtractions (``N - c``)
    admit defined assignments *above* that bound, so the enumeration range
    itself matters; expressions not involving an unbound variable are
    irrelevant here.
    """
    if not expression.index_variables() & unbound:
        return True
    if isinstance(expression, IndexVariable):
        return True
    if isinstance(expression, IndexSum) and expression.operator == "+":
        return all(
            _index_expression_clips(side, unbound)
            for side in (expression.left, expression.right)
        )
    return False


def _head_enumeration_sensitive(head: Atom, head_plan: HeadPlan) -> bool:
    """Whether enumerating the head's unbound variables observes the domain.

    Unbound *sequence* variables range over the whole domain: always
    sensitive.  Unbound *index* variables range over the domain's integer
    part, but when every use sits in an additive index expression over a
    variable base, assignments beyond the base's length are undefined and
    emit nothing — the enumeration self-clips and the emitted facts do not
    depend on the ambient domain.  A constant base (whose length the
    restricted domain may not cover) or a subtractive expression (defined
    above the base-length bound) breaks that argument.
    """
    if head_plan.unbound_sequence_vars:
        return True
    unbound = set(head_plan.unbound_index_vars)
    if not unbound:
        return False
    for term in _indexed_subterms(head):
        uses_unbound = (
            term.lo.index_variables() | term.hi.index_variables()
        ) & unbound
        if not uses_unbound:
            continue
        if not isinstance(term.base, SequenceVariable):
            return True
        if not (
            _index_expression_clips(term.lo, unbound)
            and _index_expression_clips(term.hi, unbound)
        ):
            return True
    return False


def _comparison_enumeration_sensitive(
    comparison: Comparison, index_vars: Iterable[str]
) -> bool:
    """Whether index-only enumeration of the comparison observes the domain.

    The enumeration ranges over the domain's integer part, which is bounded
    by the longest *domain* sequence.  Solutions are unaffected by that
    bound only when every use of an enumerated variable sits in an additive
    index expression over a variable base: assignments beyond the base's
    length leave the term undefined, so the enumeration self-clips (the
    mirror of :func:`_head_enumeration_sensitive`).  A constant base can be
    longer than any domain sequence, and a subtractive expression admits
    defined assignments above the bound — both make the solution set depend
    on the ambient domain.
    """
    unbound = set(index_vars)
    for side in (comparison.left, comparison.right):
        if not isinstance(side, IndexedTerm):
            continue
        if not (side.lo.index_variables() | side.hi.index_variables()) & unbound:
            continue
        if not isinstance(side.base, SequenceVariable):
            return True
        if not (
            _index_expression_clips(side.lo, unbound)
            and _index_expression_clips(side.hi, unbound)
        ):
            return True
    return False


def compile_clause(
    clause: Clause, bound_sequences: Iterable[str] = ()
) -> ClausePlan:
    """Compile one clause into a static join plan.

    ``bound_sequences`` names sequence variables assumed bound *before* the
    body runs (adornment-aware compilation for demand-driven evaluation):
    the planner treats them as covered from step one, so atoms over them are
    scanned with those columns as index lookups, and the resulting plan must
    be executed with an initial substitution supplying their values
    (:class:`PlanExecutor`'s ``seed``).
    """
    pending: List[Tuple[BodyLiteral, int]] = []
    atom_position = 0
    for literal in clause.body:
        if isinstance(literal, TrueLiteral):
            continue
        position = -1
        if isinstance(literal, Atom):
            position = atom_position
            atom_position += 1
        pending.append((literal, position))

    bound = _BoundSet()
    seeds = tuple(sorted(set(bound_sequences) & clause.sequence_variables()))
    bound.sequences |= set(seeds)
    steps: List[PlanStep] = []
    domain_sensitive = False
    while pending:
        index = _choose(pending, bound)
        literal, position = pending.pop(index)
        if isinstance(literal, Atom):
            bound_columns = tuple(
                column
                for column, arg in enumerate(literal.args)
                if bound.covers_term(arg)
            )
            for arg in literal.args:
                if not isinstance(arg, IndexedTerm):
                    continue
                base = arg.base
                if not isinstance(base, SequenceVariable):
                    # Constant base: index clipping varies with the domain.
                    domain_sensitive = True
                elif base.name not in bound.sequences:
                    # Unbound base: matching enumerates domain sequences.
                    domain_sensitive = True
            steps.append(AtomScan(literal, position, bound_columns))
            bound.sequences |= literal.sequence_variables()
            bound.indexes |= literal.index_variables()
            continue
        assert isinstance(literal, Comparison)
        if bound.covers_literal(literal):
            steps.append(CompareFilter(literal))
            continue
        binding = _binding_side(literal, bound)
        if binding is not None:
            variable, term = binding
            if not _term_domain_rooted(term):
                # The bound value's domain-membership check observes the
                # ambient domain (a constant may be in one domain, not
                # another).
                domain_sensitive = True
            steps.append(BindEquality(variable, term, literal))
            bound.sequences.add(variable)
            continue
        sequence_vars = tuple(
            sorted(literal.sequence_variables() - bound.sequences)
        )
        index_vars = tuple(sorted(literal.index_variables() - bound.indexes))
        if sequence_vars or _comparison_enumeration_sensitive(literal, index_vars):
            # Sequence variables range over the whole domain; index-only
            # enumeration self-clips unless a constant base or subtractive
            # index expression lets solutions escape the domain's bound.
            domain_sensitive = True
        steps.append(EnumerateComparison(literal, sequence_vars, index_vars))
        bound.sequences |= literal.sequence_variables()
        bound.indexes |= literal.index_variables()

    head = clause.head
    head_plan = HeadPlan(
        head=head,
        unbound_sequence_vars=tuple(
            sorted(head.sequence_variables() - bound.sequences)
        ),
        unbound_index_vars=tuple(sorted(head.index_variables() - bound.indexes)),
    )
    if _head_enumeration_sensitive(head, head_plan):
        domain_sensitive = True
    if seeds:
        # ``domain_sensitive`` must describe the *clause*, not the seeded
        # plan: pre-binding a variable the body never binds would otherwise
        # mask head-enumeration (or constant-equality) sensitivity, and the
        # demand compiler would skip the fallback that keeps it exact —
        # seeding is a pure filter only on clauses whose unseeded
        # derivations are body-driven.
        domain_sensitive = compile_clause(clause).domain_sensitive
    return ClausePlan(
        clause=clause,
        steps=tuple(steps),
        head_plan=head_plan,
        delta_safe=clause_is_delta_safe(clause),
        atom_count=atom_position,
        domain_sensitive=domain_sensitive,
        seed_sequences=seeds,
    )


def compile_program(
    program: Program,
    seeds: Optional[Mapping[int, Iterable[str]]] = None,
) -> ProgramPlan:
    """Compile every clause and schedule the plans over dependency strata.

    ``seeds`` optionally maps a clause's position in the program to the
    sequence variables pre-bound by an adornment (see :func:`compile_clause`);
    demand-driven evaluation uses it to push query constants into the plans
    of the clauses defining the queried predicate.
    """
    seeds = seeds or {}
    plans = tuple(
        compile_clause(clause, seeds.get(position, ()))
        for position, clause in enumerate(program)
    )
    graph = build_dependency_graph(program)
    components = graph.linearized_components()

    # Predicates mentioned nowhere in the graph (empty program) still need a
    # schedule entry; linearized_components already covers every predicate
    # of the program, so only the assignment below is needed.
    stratum_of: Dict[str, int] = {}
    for number, component in enumerate(components):
        for predicate in component:
            stratum_of[predicate] = number

    schedule: List[List[int]] = [[] for _ in components]
    for plan_index, plan in enumerate(plans):
        predicate = plan.head_predicate
        stratum = stratum_of.get(predicate)
        if stratum is None:
            # Head predicate absent from the graph (cannot happen for
            # programs built through Program, but stay defensive).
            components = components + [frozenset({predicate})]
            stratum_of[predicate] = len(components) - 1
            schedule.append([])
            stratum = len(components) - 1
        schedule[stratum].append(plan_index)

    recursive: List[bool] = []
    for component, plan_indexes in zip(components, schedule):
        is_recursive = len(component) > 1
        if not is_recursive:
            for plan_index in plan_indexes:
                plan = plans[plan_index]
                if set(plan.clause.body_predicates()) & set(component):
                    is_recursive = True
                    break
        recursive.append(is_recursive)

    return ProgramPlan(
        program_plans=plans,
        strata=tuple(tuple(sorted(component)) for component in components),
        schedule=tuple(tuple(indexes) for indexes in schedule),
        recursive=tuple(recursive),
    )


#: Anything an AtomScan can read rows from.
ScanSource = Union[SequenceRelation, RelationDelta]


class PlanExecutor:
    """Executes a compiled clause plan against an interpretation.

    ``derive`` (full firing) and ``derive_semi_naive`` (delta-restricted
    firing) yield ground head facts exactly like
    :meth:`ClauseEvaluator.derive`; duplicates may be yielded and are
    deduplicated by the caller on insertion.

    ``seed`` supplies the values of the plan's pre-bound variables (a plan
    compiled with ``bound_sequences`` must be executed with a seed binding
    exactly those variables): every firing starts from that substitution
    instead of the empty one, which is how demand-driven evaluation pushes
    query constants into clause bodies.

    Plans classified batchable (:func:`repro.engine.kernels
    .batch_classification`) route ``derive``/``derive_delta`` through the
    batch kernels unless ``use_kernels`` (or the process-wide default,
    :func:`repro.engine.kernels.set_batch_enabled`) turns them off; the
    firing semantics are identical either way.
    """

    __slots__ = (
        "plan", "transducers", "_steps", "_head_sequence_vars",
        "_head_index_vars", "_initial", "_batch", "_fallback_reason",
    )

    def __init__(
        self,
        plan: ClausePlan,
        transducers: Optional[TransducerRegistry] = None,
        seed: Optional[Substitution] = None,
        use_kernels: Optional[bool] = None,
    ):
        self.plan = plan
        self.transducers = transducers
        self._steps = plan.steps
        self._head_sequence_vars = plan.clause.head.sequence_variables()
        self._head_index_vars = plan.clause.head.index_variables()
        self._initial = seed if seed is not None else Substitution()
        enabled = kernels.batch_enabled() if use_kernels is None else use_kernels
        batchable, reason = kernels.batch_classification(plan)
        if batchable and not self._seed_matches_plan():
            batchable, reason = False, kernels.REASON_SEED_MISMATCH
        self._batch: Optional[kernels.BatchExecutor] = None
        self._fallback_reason = reason
        if batchable and enabled:
            seed_row = tuple(
                self._initial.sequence(name).intern_id
                for name in plan.seed_sequences
            )
            self._batch = kernels.BatchExecutor(plan, seed_row)
        elif batchable:
            self._fallback_reason = kernels.REASON_DISABLED

    def _seed_matches_plan(self) -> bool:
        """Whether the seed binds exactly the plan's adornment variables.

        The batch compilation assumes the initial substitution binds the
        plan's ``seed_sequences`` and nothing else relevant to the clause;
        any other seed (possible for hand-built executors) falls back to
        the tuple path, whose matcher handles arbitrary pre-bindings.
        """
        plan = self.plan
        clause_sequences = set(plan.clause.sequence_variables())
        bound = set(self._initial.sequence_bindings) & clause_sequences
        if bound != set(plan.seed_sequences):
            return False
        return not (
            set(self._initial.index_bindings) & set(plan.clause.index_variables())
        )

    @property
    def execution_mode(self) -> str:
        """``"batch"`` or ``"tuple"`` — how firings of this executor run."""
        return "batch" if self._batch is not None else "tuple"

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why firings take the tuple path (None on the batch path)."""
        return None if self._batch is not None else self._fallback_reason

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def derive(self, interpretation: Interpretation) -> Iterable[Fact]:
        """Every ground head fact derivable from the interpretation."""
        if self._batch is not None:
            return self._batch.derive(interpretation)
        kernels.record_tuple_firing(self._fallback_reason)
        return self._derive_tuple(interpretation)

    def _derive_tuple(self, interpretation: Interpretation) -> Iterator[Fact]:
        for substitution in self.solutions(interpretation):
            yield from self._emit(substitution, interpretation)

    def derive_semi_naive(
        self,
        interpretation: Interpretation,
        delta_views: Mapping[str, ScanSource],
    ) -> Iterator[Fact]:
        """Yield the derivations in which some atom matches a delta row.

        For each body atom whose predicate has a (non-empty) entry in
        ``delta_views``, the plan is fired once with that atom restricted to
        the delta view and all other atoms joined against the full store.
        The union over positions covers every derivation that uses at least
        one new fact.  The same derivation can be produced for several
        positions; deduplication happens on insertion.
        """
        for step in self._steps:
            if not isinstance(step, AtomScan):
                continue
            view = delta_views.get(step.atom.predicate)
            if view is None or not len(view):
                continue
            yield from self.derive_delta(interpretation, step.atom_position, view)

    def derive_delta(
        self,
        interpretation: Interpretation,
        atom_position: int,
        view: ScanSource,
    ) -> Iterable[Fact]:
        """Fire once with the atom at ``atom_position`` restricted to ``view``.

        Every other occurrence of the same predicate joins against the full
        store.  This is the unit the parallel executor range-partitions: a
        window ``[a, b)`` of a relation (or of a delta) can be split into
        disjoint sub-windows and fired independently — the union of the
        derivations over the sub-windows equals the derivation over the whole
        window, because every solution goes through exactly one row at the
        restricted position.
        """
        if self._batch is not None:
            return self._batch.derive_delta(interpretation, atom_position, view)
        kernels.record_tuple_firing(self._fallback_reason)
        return self._derive_delta_tuple(interpretation, atom_position, view)

    def _derive_delta_tuple(
        self,
        interpretation: Interpretation,
        atom_position: int,
        view: ScanSource,
    ) -> Iterator[Fact]:
        predicate = None
        for step in self._steps:
            if isinstance(step, AtomScan) and step.atom_position == atom_position:
                predicate = step.atom.predicate
                break
        if predicate is None:
            return
        for substitution in self._run(
            0, self._initial, interpretation, atom_position, {predicate: view}
        ):
            yield from self._emit(substitution, interpretation)

    def solutions(self, interpretation: Interpretation) -> Iterator[Substitution]:
        """Yield every substitution satisfying the body of the plan.

        This is the step pipeline without head emission; the prepared
        pattern queries of :mod:`repro.engine.query` execute a single-atom
        plan this way, so constant-bound argument positions go through the
        same composite-index ``AtomScan`` machinery as clause bodies.
        """
        yield from self._run(0, self._initial, interpretation, -1, None)

    def _emit(
        self, substitution: Substitution, interpretation: Interpretation
    ) -> Iterator[Fact]:
        yield from emit_heads(
            self.plan.clause.head,
            self._head_sequence_vars,
            self._head_index_vars,
            substitution,
            interpretation.domain,
            self.transducers,
        )

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def _run(
        self,
        step_index: int,
        substitution: Substitution,
        interpretation: Interpretation,
        delta_position: int,
        delta_views: Optional[Mapping[str, ScanSource]],
    ) -> Iterator[Substitution]:
        if step_index == len(self._steps):
            yield substitution
            return

        step = self._steps[step_index]
        if isinstance(step, AtomScan):
            yield from self._run_scan(
                step, step_index, substitution, interpretation, delta_position, delta_views
            )
        elif isinstance(step, CompareFilter):
            if substitution.evaluate_comparison(step.comparison):
                yield from self._run(
                    step_index + 1, substitution, interpretation, delta_position, delta_views
                )
        elif isinstance(step, BindEquality):
            value = substitution.evaluate_sequence(step.term)
            if value is not None and value in interpretation.domain:
                extended = substitution.bind_sequence(step.variable, value)
                yield from self._run(
                    step_index + 1, extended, interpretation, delta_position, delta_views
                )
        else:
            assert isinstance(step, EnumerateComparison)
            yield from self._run_enumerate(
                step, step_index, substitution, interpretation, delta_position, delta_views
            )

    def _run_scan(
        self,
        step: AtomScan,
        step_index: int,
        substitution: Substitution,
        interpretation: Interpretation,
        delta_position: int,
        delta_views: Optional[Mapping[str, ScanSource]],
    ) -> Iterator[Substitution]:
        atom = step.atom
        source: Optional[ScanSource]
        if delta_views is not None and step.atom_position == delta_position:
            source = delta_views.get(atom.predicate)
        else:
            source = interpretation.relation(atom.predicate)
        if source is None or source.arity != atom.arity:
            return

        bindings = {}
        for column in step.bound_columns:
            value = substitution.evaluate_sequence(atom.args[column])
            if value is None:
                return  # undefined term: no extension can satisfy the atom
            bindings[column] = value

        domain = interpretation.domain
        for row in source.lookup(bindings):
            for extended in match_args(atom.args, row, 0, substitution, domain):
                yield from self._run(
                    step_index + 1, extended, interpretation, delta_position, delta_views
                )

    def _run_enumerate(
        self,
        step: EnumerateComparison,
        step_index: int,
        substitution: Substitution,
        interpretation: Interpretation,
        delta_position: int,
        delta_views: Optional[Mapping[str, ScanSource]],
    ) -> Iterator[Substitution]:
        domain = interpretation.domain
        sequence_names = [
            name for name in step.sequence_vars if not substitution.binds_sequence(name)
        ]
        index_names = [
            name for name in step.index_vars if not substitution.binds_index(name)
        ]
        sequences = list(domain.sequences())
        integers = list(domain.integers())
        for sequence_assignment in (
            product(sequences, repeat=len(sequence_names)) if sequence_names else [()]
        ):
            candidate = substitution
            for name, value in zip(sequence_names, sequence_assignment):
                candidate = candidate.bind_sequence(name, value)
            for integer_assignment in (
                product(integers, repeat=len(index_names)) if index_names else [()]
            ):
                final = candidate
                for name, value in zip(index_names, integer_assignment):
                    final = final.bind_index(name, value)
                if final.evaluate_comparison(step.comparison):
                    yield from self._run(
                        step_index + 1, final, interpretation, delta_position, delta_views
                    )
