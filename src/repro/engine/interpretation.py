"""Interpretations: sets of ground atoms with their extended active domain.

An interpretation (Section 3.3) is a subset of the Herbrand base.  During
fixpoint evaluation the engine needs three things from an interpretation:

* fast membership / lookup of facts by predicate and by bound argument
  positions (for joins),
* the extended active domain ``Dext_I`` over which substitutions range,
* cheap detection of growth (new facts, new domain elements).

:class:`Interpretation` provides all three.  Facts are stored per predicate
in :class:`~repro.database.relation.SequenceRelation` objects, which already
maintain per-column indexes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.database.relation import SequenceRelation
from repro.database.database import SequenceDatabase
from repro.errors import ValidationError
from repro.language.atoms import Atom, ground_atom
from repro.sequences import ExtendedDomain, Sequence, as_sequence

Fact = Tuple[str, Tuple[Sequence, ...]]


class _NormalizeMemo(dict):
    """value -> Sequence cache; misses intern through :func:`as_sequence`.

    ``dict.__missing__`` keeps the hit path (the overwhelmingly common
    case when bulk-loading a serialized model, whose cells repeat a small
    vocabulary) entirely in C.
    """

    def __missing__(self, value):
        sequence = as_sequence(value)
        self[value] = sequence
        return sequence


class Interpretation:
    """A mutable set of ground atoms together with its extended domain."""

    __slots__ = ("_relations", "_domain", "_fact_count")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._relations: Dict[str, SequenceRelation] = {}
        self._domain = ExtendedDomain()
        self._fact_count = 0
        for predicate, values in facts:
            self.add(predicate, values)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_database(cls, database: SequenceDatabase) -> Interpretation:
        """The interpretation containing exactly the database facts."""
        interpretation = cls()
        for relation in database:
            for row in relation:
                interpretation.add(relation.name, row)
        return interpretation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, predicate: str, values: Iterable) -> bool:
        """Add a ground fact; update the extended domain; return True if new."""
        row = tuple(as_sequence(value) for value in values)
        relation = self._relations.get(predicate)
        if relation is None:
            relation = SequenceRelation(predicate, len(row))
            self._relations[predicate] = relation
        elif relation.arity != len(row):
            raise ValidationError(
                f"predicate {predicate!r} used with arities {relation.arity} "
                f"and {len(row)}"
            )
        if relation.add(row):
            self._fact_count += 1
            for value in row:
                self._domain.add(value)
            return True
        return False

    def bulk_load(self, predicate: str, rows: Iterable[Iterable]) -> int:
        """Add many facts of one predicate at once; return how many were new.

        Equivalent to calling :meth:`add` per row but built for
        recovery-sized insertions (snapshot restore): values are interned
        through a per-call memo so each distinct string is normalized
        once, the relation appends under a single lock, and the domain is
        extended once per distinct sequence rather than once per cell.
        """
        memo = _NormalizeMemo()
        lookup = memo.__getitem__
        normalized_rows = [tuple(map(lookup, values)) for values in rows]
        if not normalized_rows:
            return 0
        arity = len(normalized_rows[0])
        relation = self._relations.get(predicate)
        if relation is None:
            relation = SequenceRelation(predicate, arity)
            self._relations[predicate] = relation
        elif relation.arity != arity:
            raise ValidationError(
                f"predicate {predicate!r} used with arities {relation.arity} "
                f"and {arity}"
            )
        inserted = relation.extend_rows(normalized_rows)
        self._fact_count += inserted
        if inserted:
            for sequence in memo.values():
                self._domain.add(sequence)
        return inserted

    def add_atom(self, atom: Atom) -> bool:
        """Add a ground atom (its arguments must all be constants)."""
        from repro.language.terms import ConstantTerm

        values = []
        for arg in atom.args:
            if not isinstance(arg, ConstantTerm):
                raise ValidationError(f"cannot add non-ground atom {atom}")
            values.append(arg.value)
        return self.add(atom.predicate, values)

    def add_fact(self, fact: Fact) -> bool:
        predicate, values = fact
        return self.add(predicate, values)

    def merge(self, other: Interpretation) -> int:
        """Add every fact of ``other``; return the number of new facts."""
        added = 0
        for predicate, values in other.facts():
            if self.add(predicate, values):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def contains(self, predicate: str, values: Iterable) -> bool:
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return tuple(as_sequence(value) for value in values) in relation

    def contains_fact(self, fact: Fact) -> bool:
        predicate, values = fact
        return self.contains(predicate, values)

    def relation(self, predicate: str) -> Optional[SequenceRelation]:
        """The relation for a predicate, or ``None`` if it has no facts."""
        return self._relations.get(predicate)

    def tuples(self, predicate: str) -> FrozenSet[Tuple[Sequence, ...]]:
        """The facts of one predicate as a frozen snapshot.

        The snapshot is cached by the underlying relation and only rebuilt
        after a mutation, so repeated calls (query helpers, benchmarks) do
        not copy the fact store.
        """
        relation = self._relations.get(predicate)
        if relation is None:
            return frozenset()
        return relation.tuples()

    def relation_version(self, predicate: str) -> int:
        """Monotonic insertion counter of a predicate's relation (0 if absent)."""
        relation = self._relations.get(predicate)
        return 0 if relation is None else relation.version

    @property
    def domain_version(self) -> int:
        """Monotonic counter that grows exactly when the domain grows."""
        return len(self._domain)

    def predicates(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))

    def facts(self) -> Iterator[Fact]:
        """Iterate all facts as ``(predicate, values)`` pairs."""
        for predicate in sorted(self._relations):
            for row in self._relations[predicate].sorted_tuples():
                yield (predicate, row)

    def atoms(self) -> List[Atom]:
        """All facts as ground atoms (stable order)."""
        return [ground_atom(predicate, *row) for predicate, row in self.facts()]

    @property
    def domain(self) -> ExtendedDomain:
        """The extended active domain ``Dext_I`` of the interpretation."""
        return self._domain

    def fact_count(self) -> int:
        return self._fact_count

    def size(self) -> int:
        """The paper's size measure (Definition 11): number of sequences in
        the extended active domain."""
        return len(self._domain)

    def __len__(self) -> int:
        return self._fact_count

    def __contains__(self, fact: object) -> bool:
        if isinstance(fact, Atom):
            from repro.language.terms import ConstantTerm

            values = []
            for arg in fact.args:
                if not isinstance(arg, ConstantTerm):
                    return False
                values.append(arg.value)
            return self.contains(fact.predicate, values)
        if isinstance(fact, tuple) and len(fact) == 2:
            predicate, values = fact
            return self.contains(predicate, values)
        return False

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return set(self.facts()) == set(other.facts())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(relation)}" for name, relation in sorted(self._relations.items())
        )
        return f"Interpretation({self._fact_count} facts; {parts})"

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def copy(self) -> Interpretation:
        clone = Interpretation()
        for predicate, relation in self._relations.items():
            clone._relations[predicate] = relation.copy()
        clone._domain = self._domain.copy()
        clone._fact_count = self._fact_count
        return clone

    def to_database(self) -> SequenceDatabase:
        """Convert to a :class:`SequenceDatabase` (e.g. to feed another query)."""
        database = SequenceDatabase()
        for predicate, relation in self._relations.items():
            for row in relation:
                database.add_fact(predicate, *row)
        return database

    def restrict(self, predicates: Iterable[str]) -> Interpretation:
        """The sub-interpretation containing only the given predicates.

        Relations are copied wholesale (reusing their snapshots) instead of
        re-inserting fact by fact; only the extended domain is rebuilt,
        since it depends on which sequences survive the restriction.
        """
        wanted = set(predicates)
        restricted = Interpretation()
        for predicate, relation in self._relations.items():
            if predicate not in wanted:
                continue
            clone = relation.copy()
            restricted._relations[predicate] = clone
            restricted._fact_count += len(clone)
            restricted._domain.add_all(relation.all_sequences())
        return restricted
