"""Compiled clause plans: the static join-order IR of the evaluation core.

The backtracking reference evaluator (:mod:`repro.engine.evaluation`)
re-derives its literal order at every search node with
``ClauseEvaluator._choose_literal``.  That choice depends only on *which*
variables are bound — never on their values — so the entire decision tree
collapses to a single static order that can be computed once per clause.

A :class:`ClausePlan` is that order, expressed as a sequence of steps:

* :class:`AtomScan` — match one body atom against the fact store, using the
  composite hash index over the columns that are bound when the step runs
  (``bound_columns`` is known statically);
* :class:`CompareFilter` — a comparison whose variables are all bound: a
  pure filter;
* :class:`BindEquality` — an equality with one evaluable side and one bare
  unbound variable: evaluates the side and binds the variable;
* :class:`EnumerateComparison` — the active-domain fallback for a
  comparison that can neither filter nor bind (its unbound variables are
  enumerated over the extended domain).

After the steps, the :class:`HeadPlan` lists the head variables that are
still unbound (they are enumerated over the domain, exactly as the
declarative semantics prescribes) and the plan records whether the clause
is *delta-safe*, i.e. whether predicate-level semi-naive evaluation may
restrict it to delta facts.

Plans are built by :func:`repro.engine.planner.compile_clause` and executed
by :class:`repro.engine.planner.PlanExecutor`; :meth:`ClausePlan.explain`
renders the plan for the CLI ``explain`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.language.atoms import Atom, Comparison
from repro.language.clauses import Clause
from repro.language.terms import SequenceTerm


@dataclass(frozen=True)
class AtomScan:
    """Match a body atom against its relation (or a delta view of it).

    ``atom_position`` is the index of the atom among the clause's body atoms
    in source order; the semi-naive driver uses it to direct one firing's
    delta restriction at this atom.  ``bound_columns`` are the argument
    positions whose terms are fully evaluable when the step runs — they are
    turned into a composite index lookup.
    """

    atom: Atom
    atom_position: int
    bound_columns: Tuple[int, ...]

    def describe(self) -> str:
        if self.bound_columns:
            columns = ",".join(str(column) for column in self.bound_columns)
            access = f"index scan on columns [{columns}]"
        else:
            access = "full scan"
        return f"scan {self.atom} ({access})"


@dataclass(frozen=True)
class CompareFilter:
    """Evaluate a fully-bound comparison as a filter."""

    comparison: Comparison

    def describe(self) -> str:
        return f"filter {self.comparison}"


@dataclass(frozen=True)
class BindEquality:
    """Bind a bare variable from the evaluable side of an equality."""

    variable: str
    term: SequenceTerm
    comparison: Comparison

    def describe(self) -> str:
        return f"bind {self.variable} := {self.term}"


@dataclass(frozen=True)
class EnumerateComparison:
    """Active-domain enumeration fallback for an unbindable comparison."""

    comparison: Comparison
    sequence_vars: Tuple[str, ...]
    index_vars: Tuple[str, ...]

    def describe(self) -> str:
        names = ", ".join(self.sequence_vars + self.index_vars)
        return f"enumerate {{{names}}} over domain, check {self.comparison}"


PlanStep = Union[AtomScan, CompareFilter, BindEquality, EnumerateComparison]


@dataclass(frozen=True)
class HeadPlan:
    """How the head is produced once the body is satisfied."""

    head: Atom
    unbound_sequence_vars: Tuple[str, ...]
    unbound_index_vars: Tuple[str, ...]

    @property
    def needs_enumeration(self) -> bool:
        return bool(self.unbound_sequence_vars or self.unbound_index_vars)

    def describe(self) -> str:
        if not self.needs_enumeration:
            return f"emit {self.head}"
        names = ", ".join(self.unbound_sequence_vars + self.unbound_index_vars)
        return f"emit {self.head} enumerating {{{names}}} over domain"


@dataclass(frozen=True)
class ClausePlan:
    """The compiled evaluation plan of one clause.

    ``domain_sensitive`` records whether the clause's derivations can depend
    on the extended active domain *beyond* the contents of its body
    relations: head-variable enumeration, sequence-variable
    ``EnumerateComparison`` fallbacks, unbound indexed-term bases (which
    enumerate domain sequences) and constant-rooted terms whose domain
    membership or index clipping varies with the domain.  Demand-driven
    evaluation (:mod:`repro.engine.demand`) may restrict the swept plan set
    only when every relevant plan is domain-insensitive.

    ``seed_sequences`` lists sequence variables assumed bound *before* the
    body runs (adornment-aware compilation): the executor is given their
    values as an initial substitution, so scans over them become index
    lookups.
    """

    clause: Clause
    steps: Tuple[PlanStep, ...]
    head_plan: HeadPlan
    delta_safe: bool
    atom_count: int
    domain_sensitive: bool = False
    seed_sequences: Tuple[str, ...] = ()

    @property
    def head_predicate(self) -> str:
        return self.clause.head.predicate

    def body_predicates(self) -> Tuple[str, ...]:
        return tuple(
            sorted({step.atom.predicate for step in self.steps if isinstance(step, AtomScan)})
        )

    def explain(self) -> str:
        """A human-readable rendering of the plan."""
        # Imported lazily: kernels.py imports this module for the step types.
        from repro.engine.kernels import batch_classification

        lines = [f"clause: {self.clause}"]
        mode = "semi-naive (delta-restricted)" if self.delta_safe else "full re-evaluation"
        lines.append(f"  firing mode: {mode}")
        batchable, reason = batch_classification(self)
        if batchable:
            lines.append("  execution: batch kernels")
        else:
            lines.append(f"  execution: per-tuple ({reason})")
        if self.seed_sequences:
            names = ", ".join(self.seed_sequences)
            lines.append(f"  given (adornment seed): {{{names}}}")
        for number, step in enumerate(self.steps, start=1):
            lines.append(f"  {number}. {step.describe()}")
        lines.append(f"  {len(self.steps) + 1}. {self.head_plan.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ProgramPlan:
    """All clause plans of a program plus the evaluation schedule.

    ``strata`` lists the strongly connected components of the predicate
    dependency graph in bottom-up order; ``schedule`` assigns each clause
    plan to the stratum of its head predicate; ``recursive`` marks the
    strata whose predicates depend on themselves (these are the ones that
    need repeated sweeps to converge).
    """

    program_plans: Tuple[ClausePlan, ...]
    strata: Tuple[Tuple[str, ...], ...]
    schedule: Tuple[Tuple[int, ...], ...]  # per stratum: indexes into program_plans
    recursive: Tuple[bool, ...]            # per stratum

    def explain(self) -> str:
        """Render the whole program's plan and schedule."""
        lines: List[str] = []
        for number, (stratum, plan_indexes, is_recursive) in enumerate(
            zip(self.strata, self.schedule, self.recursive), start=1
        ):
            kind = "recursive" if is_recursive else "non-recursive"
            predicates = ", ".join(stratum)
            lines.append(f"stratum {number} ({kind}): {{{predicates}}}")
            if not plan_indexes:
                lines.append("  (no rules: base predicate)")
            for plan_index in plan_indexes:
                plan = self.program_plans[plan_index]
                for line in plan.explain().splitlines():
                    lines.append(f"  {line}")
        return "\n".join(lines)
