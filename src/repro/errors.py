"""Exception hierarchy shared by every subsystem of the reproduction.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish parse errors, semantic errors, evaluation-limit
violations and machine-model errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class AlphabetError(ReproError):
    """A symbol outside the declared alphabet was used."""


class SequenceIndexError(ReproError):
    """An index term evaluated outside the valid range of a sequence.

    Note that during rule evaluation an out-of-range index does not raise:
    the substitution is simply *undefined* at the term (Section 3.2 of the
    paper) and the rule does not fire.  This exception is raised only by the
    direct ``Sequence`` slicing API when the caller asks for an impossible
    subsequence.
    """


class ParseError(ReproError):
    """The textual program or query could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """A syntactically well-formed object violates a language restriction.

    Examples: a constructive term appearing in a rule body, nested indexed
    terms such as ``X[1:N][2:end]``, or a transducer term whose arity does
    not match the registered transducer.
    """


class SafetyError(ReproError):
    """A program violates the safety restriction required by the caller.

    Raised, for instance, when a strongly-safe engine is given a program
    whose predicate dependency graph contains a constructive cycle
    (Definition 10 of the paper).
    """


class EvaluationError(ReproError):
    """A runtime failure inside the fixpoint evaluation engine."""


class FixpointNotReached(EvaluationError):
    """Evaluation hit a resource limit before reaching the least fixpoint.

    Programs with an infinite least fixpoint (e.g. ``rep2`` in Example 1.5 or
    the ``echo`` program in Example 1.6) can only be stopped by limits; this
    exception carries the partial interpretation computed so far.
    """

    def __init__(self, message: str, partial=None, iterations: int = 0):
        super().__init__(message)
        self.partial = partial
        self.iterations = iterations


class UnknownPredicateError(EvaluationError):
    """A query referenced a predicate that no rule or fact defines."""


class SessionPoisonedError(EvaluationError):
    """A serving session was used after a failed maintenance run.

    When :meth:`~repro.engine.session.DatalogSession.add_facts` hits a
    resource limit, the resident model is a *partial* fixpoint: answering
    queries from it would silently return incomplete results.  The session
    is therefore poisoned and every subsequent query (or further update)
    raises this error; the session must be discarded and rebuilt.
    """


class StorageError(ReproError):
    """A failure in the durable storage engine (:mod:`repro.storage`).

    Covers everything from an unwritable data directory to a snapshot
    written by an incompatible format version or a different program.
    Storage failures are always raised as this typed hierarchy naming the
    offending file (and, for frame-level damage, the byte offset) — a
    corrupt file must never surface as a raw decode traceback.
    """


class CorruptLogError(StorageError):
    """The write-ahead log is damaged somewhere recovery cannot repair.

    A torn or CRC-mismatching frame at the very *tail* of the final
    segment is the expected signature of a crash mid-append and is
    silently truncated (with a warning in the recovery report).  The same
    damage anywhere else — mid-segment, or in a non-final segment — means
    committed history is gone, and recovery refuses to guess: this error
    names the segment file and byte offset.
    """


class CorruptSnapshotError(StorageError):
    """A snapshot file failed its checksum or structural validation.

    Recovery falls back to the next-older snapshot when one exists (the
    retained WAL segments still cover the gap); with no usable fallback
    the error propagates, naming the file and byte offset.
    """


class ReplicationError(ReproError):
    """A failure in the leader/follower replication layer.

    Covers stream-level problems (a generation frame that does not apply
    cleanly, a program-fingerprint mismatch between leader and follower,
    a follower ahead of its leader) as opposed to transport failures,
    which surface as :class:`ProtocolError`/``OSError`` and are retried.
    """


class NotLeaderError(ReplicationError):
    """A write was sent to a read-only follower.

    Carries the leader's address (``"host:port"``) so clients can redirect
    the write; :class:`~repro.api.client.DatalogClient` follows the
    redirect automatically unless told not to.
    """

    def __init__(self, message: str, leader: str = ""):
        super().__init__(message)
        self.leader = leader


class LagTimeoutError(ReplicationError):
    """A read-your-writes query timed out waiting for a minimum generation.

    Raised when a query carrying ``min_generation`` was not satisfiable
    within its wait budget — the serving node (typically a follower) had
    not caught up to the requested generation in time.  The read was not
    answered from stale data; retry, lengthen the timeout, or query the
    leader.
    """


class SlowConsumerError(ReproError):
    """A live-query subscriber fell too far behind the publish stream.

    The serving side buffers a bounded number of delta frames per
    subscription and coalesces bursts into a single latest-generation
    frame; when even the coalesced backlog exceeds the configured bound,
    the subscription is terminated with this error rather than letting
    one stalled reader hold generation history (and memory) for everyone
    else.  Re-subscribe and start from a fresh initial result set.
    """


class ProtocolError(ReproError):
    """A malformed frame on the versioned network protocol.

    Raised by :mod:`repro.api.protocol` when a peer sends bytes that are not
    a well-formed length-prefixed JSON frame (bad length line, oversized
    frame, truncated payload, or a payload that is not a JSON object).  The
    connection is unusable afterwards and must be re-established.
    """


class RemoteApiError(ReproError):
    """A typed error returned by the versioned API.

    Servers never let raw exceptions cross the wire: every failure travels
    as an :class:`repro.api.types.ApiError` with a stable ``code``.  Codes
    that correspond to a concrete library exception are re-raised
    client-side as that exception; everything else (bad requests,
    unsupported schema versions, unknown cursors, internal errors) is
    raised as this class, carrying the code and the field-level details.
    """

    def __init__(self, message: str, code: str = "internal_error", details=None):
        super().__init__(message)
        self.code = code
        self.details = dict(details) if details else {}


class MultiValuedOutputError(EvaluationError):
    """A program used as a sequence function derived several ``output`` facts.

    Definition 5 of the paper defines the expressed function only when the
    ``output`` relation of the least fixpoint holds a *single* sequence; a
    multi-valued result means the function is undefined at the input, which
    is an error distinct from deriving no output at all (``None``).
    """


class TransducerError(ReproError):
    """Base class for errors in the generalized transducer machine model."""


class TransducerDefinitionError(TransducerError):
    """The transducer definition violates Definition 7 of the paper.

    Covers: a transition that consumes no input symbol, a transition that
    moves a head past the end-of-tape marker, or a subtransducer whose arity
    is not ``m + 1`` or whose order is not strictly smaller.
    """


class TransducerRuntimeError(TransducerError):
    """The transducer got stuck: no transition is defined for the current
    state and scanned symbols before all input was consumed."""


class NetworkError(TransducerError):
    """An invalid transducer network (cyclic, dangling wires, bad arity)."""


class TuringMachineError(ReproError):
    """Errors in the Turing machine substrate (bad definition or runtime)."""
