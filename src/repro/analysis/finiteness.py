"""Static finiteness classification.

Theorem 2 of the paper shows that deciding whether a Sequence Datalog program
has a finite semantics is fully undecidable (outside RE), so no classifier
can be complete.  What the paper *does* give us is a collection of sufficient
conditions, each with a complexity guarantee:

================================  ==========================================
verdict                            guarantee (paper reference)
================================  ==========================================
``FINITE_NON_CONSTRUCTIVE``        domain never grows; PTIME data complexity
                                   (Theorem 3)
``FINITE_STRONGLY_SAFE``           no constructive cycles; finite minimal
                                   model, polynomial for order <= 2,
                                   hyperexponential for order 3
                                   (Theorems 8, 9, Corollary 2)
``POSSIBLY_INFINITE``              constructive recursion present; the
                                   program may have an infinite least
                                   fixpoint (e.g. Examples 1.5 ``rep2``
                                   and 1.6 ``echo``)
================================  ==========================================

``POSSIBLY_INFINITE`` is deliberately conservative: some such programs are
finite on every database, but proving it is in general impossible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.fragments import is_non_constructive
from repro.analysis.safety import SafetyReport, analyze_safety
from repro.language.clauses import Program


class FinitenessVerdict(enum.Enum):
    """Outcome of the static finiteness classification."""

    FINITE_NON_CONSTRUCTIVE = "finite (non-constructive fragment)"
    FINITE_STRONGLY_SAFE = "finite (strongly safe)"
    POSSIBLY_INFINITE = "possibly infinite (constructive recursion)"

    def is_finite(self) -> bool:
        """True when the verdict guarantees a finite least fixpoint."""
        return self is not FinitenessVerdict.POSSIBLY_INFINITE


@dataclass
class FinitenessReport:
    """Classification result with the supporting safety analysis."""

    verdict: FinitenessVerdict
    safety: SafetyReport

    def describe(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        lines.append(self.safety.describe())
        return "\n".join(lines)


def classify_finiteness(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> FinitenessReport:
    """Classify a program using the paper's sufficient conditions."""
    safety = analyze_safety(program, transducer_orders)
    if is_non_constructive(program):
        verdict = FinitenessVerdict.FINITE_NON_CONSTRUCTIVE
    elif safety.strongly_safe:
        verdict = FinitenessVerdict.FINITE_STRONGLY_SAFE
    else:
        verdict = FinitenessVerdict.POSSIBLY_INFINITE
    return FinitenessReport(verdict=verdict, safety=safety)
