"""Predicate dependency graphs (Definitions 8 and 9 of the paper).

A predicate ``p`` *depends on* ``q`` in a program ``P`` when some clause has
``p`` in the head and ``q`` in the body; the dependency is *constructive*
when that clause is constructive (its head contains a concatenation or a
transducer term).  The *predicate dependency graph* has the predicates as
nodes and one edge per dependency; an edge is constructive if any clause
witnessing it is constructive.  A *constructive cycle* is a cycle containing
a constructive edge; strong safety (Definition 10) is the absence of such
cycles.

The graph is backed by :mod:`networkx`, which also gives us strongly
connected components and topological sorting for the stratification used in
the proofs of Theorems 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

import networkx as nx

from repro.language.clauses import Program


@dataclass(frozen=True)
class DependencyEdge:
    """An edge of the predicate dependency graph."""

    source: str          # the head predicate (the dependent one)
    target: str          # the body predicate it depends on
    constructive: bool   # True if witnessed by a constructive clause
    transducers: FrozenSet[str] = frozenset()

    def __str__(self) -> str:
        marker = " [constructive]" if self.constructive else ""
        return f"{self.source} -> {self.target}{marker}"


class DependencyGraph:
    """The predicate dependency graph of a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._graph = nx.DiGraph()
        for predicate in program.predicates():
            self._graph.add_node(predicate)
        for clause in program:
            head = clause.head.predicate
            constructive = clause.is_constructive()
            transducers = clause.transducer_names()
            for body_predicate in clause.body_predicates():
                if self._graph.has_edge(head, body_predicate):
                    data = self._graph[head][body_predicate]
                    data["constructive"] = data["constructive"] or constructive
                    data["transducers"] = data["transducers"] | transducers
                else:
                    self._graph.add_edge(
                        head,
                        body_predicate,
                        constructive=constructive,
                        transducers=frozenset(transducers),
                    )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._graph.nodes)

    def edges(self) -> List[DependencyEdge]:
        result = []
        for source, target, data in self._graph.edges(data=True):
            result.append(
                DependencyEdge(
                    source=source,
                    target=target,
                    constructive=data["constructive"],
                    transducers=data["transducers"],
                )
            )
        return sorted(result, key=lambda edge: (edge.source, edge.target))

    def constructive_edges(self) -> List[DependencyEdge]:
        return [edge for edge in self.edges() if edge.constructive]

    def depends_on(self, source: str, target: str) -> bool:
        """True if ``source`` depends (directly) on ``target``."""
        return self._graph.has_edge(source, target)

    def dependencies_of(self, predicate: str) -> FrozenSet[str]:
        """Every predicate reachable from ``predicate``, including itself.

        This is the *relevant* predicate set of a query on ``predicate``:
        the only predicates whose clauses (and base facts) can influence its
        extension, which demand-driven evaluation
        (:mod:`repro.engine.demand`) restricts the fixpoint sweep to.  A
        predicate the graph does not know is its own sole dependency.
        """
        if predicate not in self._graph:
            return frozenset({predicate})
        return frozenset(nx.descendants(self._graph, predicate)) | {predicate}

    def is_self_reachable(self, predicate: str) -> bool:
        """True if ``predicate`` transitively depends on itself.

        Demand-driven evaluation may push query constants into the heads of
        a predicate's defining clauses only when the restricted facts feed
        nothing but the query — i.e. exactly when the predicate is *not*
        self-reachable.
        """
        if predicate not in self._graph:
            return False
        # nx.descendants never includes the source, even through a cycle, so
        # check for a dependent of ``predicate`` among its own dependencies.
        reachable = nx.descendants(self._graph, predicate) | {predicate}
        return any(
            dependent in reachable
            for dependent in self._graph.predecessors(predicate)
        )

    def depends_constructively_on(self, source: str, target: str) -> bool:
        return (
            self._graph.has_edge(source, target)
            and self._graph[source][target]["constructive"]
        )

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying networkx graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # Cycles and components
    # ------------------------------------------------------------------
    def cycles(self) -> List[List[str]]:
        """All simple cycles of the graph."""
        return [list(cycle) for cycle in nx.simple_cycles(self._graph)]

    def constructive_cycles(self) -> List[List[str]]:
        """All simple cycles containing at least one constructive edge."""
        offending = []
        for cycle in nx.simple_cycles(self._graph):
            nodes = list(cycle)
            closed = nodes + [nodes[0]]
            pairs = list(zip(closed, closed[1:]))
            if any(self._graph[a][b]["constructive"] for a, b in pairs):
                offending.append(nodes)
        return offending

    def has_constructive_cycle(self) -> bool:
        """True iff some cycle contains a constructive edge.

        Equivalent to: some strongly connected component contains a
        constructive edge between two of its members (including self-loops).
        This formulation avoids enumerating all simple cycles.
        """
        for component in nx.strongly_connected_components(self._graph):
            for source, target, data in self._graph.edges(component, data=True):
                if target in component and data["constructive"]:
                    return True
        return False

    def strongly_connected_components(self) -> List[FrozenSet[str]]:
        """The strongly connected components of the graph."""
        return [frozenset(c) for c in nx.strongly_connected_components(self._graph)]

    def linearized_components(self) -> List[FrozenSet[str]]:
        """Components in bottom-up topological order.

        The proof of Theorem 8 linearizes the components so that if there is
        an edge from component ``i`` to component ``j`` then ``i > j`` (the
        dependency points *down*).  This method returns the components so
        that every component only depends on components appearing *earlier*
        in the list -- i.e. the order in which strata must be evaluated
        bottom-up.
        """
        condensation = nx.condensation(self._graph)
        order = list(nx.topological_sort(condensation))
        # topological_sort puts dependents before their dependencies for the
        # condensation's edge direction (head -> body); we want bottom-up.
        components = [
            frozenset(condensation.nodes[node]["members"]) for node in order
        ]
        return list(reversed(components))

    def __repr__(self) -> str:
        return (
            f"DependencyGraph({self._graph.number_of_nodes()} predicates, "
            f"{self._graph.number_of_edges()} edges, "
            f"{len(self.constructive_edges())} constructive)"
        )

    def describe(self) -> str:
        """A human-readable description (used by the Figure 3 benchmark)."""
        lines = [f"predicates: {', '.join(self.nodes)}"]
        for edge in self.edges():
            lines.append(f"  {edge}")
        cycles = self.constructive_cycles()
        if cycles:
            rendered = "; ".join(" -> ".join(cycle + [cycle[0]]) for cycle in cycles)
            lines.append(f"constructive cycles: {rendered}")
        else:
            lines.append("constructive cycles: none")
        return "\n".join(lines)


def build_dependency_graph(program: Program) -> DependencyGraph:
    """Build the predicate dependency graph of a program."""
    return DependencyGraph(program)
