"""Strong safety (Definition 10) and program order (Section 7.1).

A Transducer Datalog (or Sequence Datalog) program is *strongly safe* when
its predicate dependency graph contains no constructive cycle -- i.e. there
is no recursion through sequence construction.  Strongly safe programs of
order 2 have polynomially bounded minimal models (Theorem 8), those of order
3 hyperexponentially bounded ones (Theorem 9); both are finite
(Corollary 2).

The *order* of a program is the maximum order of the transducers it mentions
(a program with no transducer terms has order 0; plain concatenation counts
as order 1 since it is the ``append`` base transducer in disguise, see
Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.analysis.dependency_graph import DependencyGraph, build_dependency_graph
from repro.errors import SafetyError
from repro.language.clauses import Program


@dataclass
class SafetyReport:
    """The outcome of the strong-safety analysis of a program."""

    strongly_safe: bool
    constructive_cycles: List[List[str]] = field(default_factory=list)
    constructive_predicates: List[str] = field(default_factory=list)
    order: int = 0
    graph: Optional[DependencyGraph] = None

    def __bool__(self) -> bool:
        return self.strongly_safe

    def describe(self) -> str:
        lines = [
            f"strongly safe: {'yes' if self.strongly_safe else 'no'}",
            f"program order: {self.order}",
        ]
        if self.constructive_predicates:
            lines.append(
                "constructive predicates: " + ", ".join(self.constructive_predicates)
            )
        if self.constructive_cycles:
            for cycle in self.constructive_cycles:
                lines.append("constructive cycle: " + " -> ".join(cycle + [cycle[0]]))
        return "\n".join(lines)


def program_order(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> int:
    """The order of a program (Section 7.1).

    ``transducer_orders`` maps transducer names to their orders; names not in
    the mapping default to order 1 (a base transducer).  A program using only
    plain concatenation has order 1; a program with no constructive clause at
    all has order 0.
    """
    order = 0
    for clause in program:
        if not clause.is_constructive():
            continue
        clause_order = 1  # plain concatenation == the append base transducer
        for name in clause.transducer_names():
            if transducer_orders is not None and name in transducer_orders:
                clause_order = max(clause_order, transducer_orders[name])
            else:
                clause_order = max(clause_order, 1)
        order = max(order, clause_order)
    return order


def analyze_safety(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> SafetyReport:
    """Run the strong-safety analysis and return a full report."""
    graph = build_dependency_graph(program)
    cycles = graph.constructive_cycles()
    constructive_predicates = sorted(
        {clause.head.predicate for clause in program.constructive_clauses()}
    )
    return SafetyReport(
        strongly_safe=not cycles,
        constructive_cycles=cycles,
        constructive_predicates=constructive_predicates,
        order=program_order(program, transducer_orders),
        graph=graph,
    )


def is_strongly_safe(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> bool:
    """True iff the program's dependency graph has no constructive cycle."""
    return build_dependency_graph(program).has_constructive_cycle() is False


def _cycle_location(program: Program, cycle: List[str]) -> str:
    """Point at a constructive clause realizing one edge of the cycle.

    Returns e.g. `` (clause at 3:1: p(X ++ "a") :- p(X).)`` when the
    program was parsed from text, or a span-free rendering for
    programmatically built clauses; empty when no witness is found.
    """
    members = set(cycle)
    for clause in program.constructive_clauses():
        if clause.head.predicate not in members:
            continue
        if not any(atom.predicate in members for atom in clause.body_atoms()):
            continue
        span = getattr(clause, "span", None)
        if span is not None:
            return f" (clause at {span.line}:{span.column}: {clause})"
        return f" (clause: {clause})"
    return ""


def require_strongly_safe(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> SafetyReport:
    """Return the safety report, raising :class:`SafetyError` if unsafe.

    The error names every constructive cycle and, when the program carries
    source spans, the line and column of a clause realizing each cycle.
    """
    report = analyze_safety(program, transducer_orders)
    if not report.strongly_safe:
        cycles = "; ".join(
            " -> ".join(cycle + [cycle[0]]) + _cycle_location(program, cycle)
            for cycle in report.constructive_cycles
        )
        raise SafetyError(
            f"program is not strongly safe: constructive cycle(s) {cycles}"
        )
    return report
