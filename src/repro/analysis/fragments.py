"""Language fragments used by the paper's complexity results.

* **Non-constructive Sequence Datalog** (Section 5, Theorem 3): programs
  without any constructive term.  Their extended active domain never grows,
  and their data complexity is complete for PTIME.
* **Strongly safe Transducer Datalog** (Section 8): see
  :mod:`repro.analysis.safety`.

This module provides detection of the non-constructive fragment and the
extraction of the maximal non-constructive subset of a program (useful as a
baseline in benchmarks).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.language.clauses import Clause, Program


def is_non_constructive(program: Program) -> bool:
    """True iff the program contains no constructive clause (Theorem 3 fragment)."""
    return not program.is_constructive()


def non_constructive_subset(program: Program) -> Tuple[Program, Program]:
    """Split a program into its non-constructive and constructive clauses.

    Returns ``(non_constructive, constructive)``.  The non-constructive part
    is itself a valid program of the Theorem 3 fragment: evaluating it alone
    never grows the extended active domain.
    """
    plain: List[Clause] = []
    constructive: List[Clause] = []
    for clause in program:
        if clause.is_constructive():
            constructive.append(clause)
        else:
            plain.append(clause)
    return Program(plain), Program(constructive)


def constructive_clause_count(program: Program) -> int:
    """Number of constructive clauses in the program."""
    return len(program.constructive_clauses())
