"""Static analysis of Sequence Datalog and Transducer Datalog programs.

This package implements the syntactic notions the paper uses to carve out
finite, safe fragments:

* :mod:`~repro.analysis.dependency_graph` -- predicate dependency graphs with
  constructive edges (Definitions 8-9);
* :mod:`~repro.analysis.safety` -- strong safety: no constructive cycles
  (Definition 10), plus program order;
* :mod:`~repro.analysis.stratification` -- stratification with respect to
  construction (Section 5 and the proof of Theorem 8);
* :mod:`~repro.analysis.guardedness` -- guarded programs and the guarded
  transformation of Appendix B (Theorem 10);
* :mod:`~repro.analysis.fragments` -- the non-constructive fragment
  (Theorem 3) and related classifications;
* :mod:`~repro.analysis.finiteness` -- a conservative static finiteness
  classifier combining all of the above (the dynamic counterpart being the
  evaluation limits of the engine, since finiteness is undecidable by
  Theorem 2);
* :mod:`~repro.analysis.complexity` -- the Theorem 3/8/9 complexity
  guarantees as a static report, with model-size envelopes and the "levers"
  that move a program into a cheaper class;
* :mod:`~repro.analysis.diagnostics` / :mod:`~repro.analysis.rules` -- the
  program diagnostics engine: all of the above (plus semantic checks and
  planner-aware performance lints) as one rule registry producing stable
  codes with source spans, surfaced by ``repro lint`` and the TCP API.
"""

from repro.analysis.complexity import (
    ComplexityReport,
    DataComplexityClass,
    analyze_complexity,
    complexity_levers,
)
from repro.analysis.dependency_graph import (
    DependencyEdge,
    DependencyGraph,
    build_dependency_graph,
)
from repro.analysis.safety import SafetyReport, analyze_safety, is_strongly_safe, program_order
from repro.analysis.stratification import (
    ConstructionStratification,
    is_stratified_by_construction,
    stratify_by_construction,
)
from repro.analysis.guardedness import guard_program, is_guarded, unguarded_clauses
from repro.analysis.fragments import is_non_constructive, non_constructive_subset
from repro.analysis.finiteness import FinitenessVerdict, classify_finiteness
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    SEVERITIES,
    explain_with_diagnostics,
    lint_program,
)
from repro.analysis.rules import LintContext, LintRule, all_rules, run_rules

__all__ = [
    "ComplexityReport",
    "ConstructionStratification",
    "DataComplexityClass",
    "DependencyEdge",
    "DependencyGraph",
    "Diagnostic",
    "DiagnosticReport",
    "FinitenessVerdict",
    "LintContext",
    "LintRule",
    "SEVERITIES",
    "SafetyReport",
    "all_rules",
    "explain_with_diagnostics",
    "lint_program",
    "run_rules",
    "analyze_complexity",
    "analyze_safety",
    "build_dependency_graph",
    "classify_finiteness",
    "complexity_levers",
    "guard_program",
    "is_guarded",
    "is_non_constructive",
    "is_stratified_by_construction",
    "is_strongly_safe",
    "non_constructive_subset",
    "program_order",
    "stratify_by_construction",
    "unguarded_clauses",
]
