"""The lint rule registry: every diagnostic code and the check behind it.

Rules are small functions from a :class:`LintContext` (the program plus
optional database, query patterns and transducer orders, with lazily
computed shared analyses) to an iterable of
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  They register
themselves under a stable code with the :func:`lint_rule` decorator, in
three tiers:

* ``SDL-E1xx`` semantic errors: undefined predicates, arity conflicts,
  range-restriction violations;
* ``SDL-W2xx`` paper-theory warnings (possibly-infinite programs,
  constructive cycles, unstratifiable construction, unguarded clauses)
  and ``SDL-H3xx`` hygiene hints (singleton variables, duplicate and dead
  clauses);
* ``SDL-P4xx`` performance lints read off the compiled plan: per-clause
  kernel-fallback reasons, cartesian-product joins, scans that cannot use
  a composite index.

The context computes *facts* (which predicates conflict, which scans are
unkeyed); the rules only decide severity and wording.  That split keeps
every rule independent of the order the registry runs them in.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_HINT,
    SEVERITY_PERF,
    SEVERITY_WARNING,
)
from repro.analysis.finiteness import FinitenessReport, FinitenessVerdict, classify_finiteness
from repro.analysis.guardedness import unguarded_clauses
from repro.analysis.safety import SafetyReport, analyze_safety
from repro.errors import ReproError
from repro.language.atoms import Atom, Comparison
from repro.language.clauses import Clause, Program
from repro.language.spans import SourceSpan, span_of
from repro.language.terms import (
    ConcatTerm,
    IndexSum,
    IndexTerm,
    IndexVariable,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
    TransducerTerm,
)

#: Occurrence roles used by :meth:`LintContext.atom_occurrences`.
ROLE_HEAD = "head"
ROLE_BODY = "body"
ROLE_PATTERN = "query pattern"


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
class LintContext:
    """Everything a rule may look at, with shared analyses computed once.

    ``database`` is a :class:`~repro.database.database.SequenceDatabase`
    or ``None``; rules must test ``is not None`` (an empty database is
    falsy but still a schema).  ``plan()`` is ``None`` when the program
    cannot be compiled (e.g. arity conflicts), in which case the
    plan-reading rules simply do not fire.
    """

    def __init__(
        self,
        program: Program,
        source: Optional[str] = None,
        database: Optional[Any] = None,
        patterns: Tuple[Atom, ...] = (),
        transducer_orders: Optional[Dict[str, int]] = None,
    ) -> None:
        self.program = program
        self.source = source
        self.database = database
        self.patterns = patterns
        self.transducer_orders = transducer_orders
        self._cache: Dict[str, Any] = {}

    # -- shared structural facts ---------------------------------------
    def atom_occurrences(self) -> List[Tuple[Atom, Optional[Clause], str]]:
        """Every atom of the program and patterns with its clause and role."""
        cached = self._cache.get("occurrences")
        if cached is None:
            cached = []
            for clause in self.program:
                cached.append((clause.head, clause, ROLE_HEAD))
                for atom in clause.body_atoms():
                    cached.append((atom, clause, ROLE_BODY))
            for atom in self.patterns:
                cached.append((atom, None, ROLE_PATTERN))
            self._cache["occurrences"] = cached
        return cached

    def known_predicates(self) -> Set[str]:
        """Predicates with a definition: clause heads plus database relations."""
        known = set(self.program.head_predicates())
        if self.database is not None:
            known.update(self.database.predicates())
        return known

    def undefined_predicates(self) -> Set[str]:
        """Body/pattern predicates with no defining clause and no relation.

        Only meaningful when a database is given: without one, any unknown
        predicate may legitimately be an EDB relation supplied later.
        """
        cached = self._cache.get("undefined")
        if cached is None:
            cached = set()
            if self.database is not None:
                known = self.known_predicates()
                for atom, _clause, role in self.atom_occurrences():
                    if role != ROLE_HEAD and atom.predicate not in known:
                        cached.add(atom.predicate)
            self._cache["undefined"] = cached
        return cached

    def arity_conflicts(self) -> List["ArityConflict"]:
        """One record per predicate used with more than one arity."""
        cached = self._cache.get("conflicts")
        if cached is None:
            cached = _find_arity_conflicts(self)
            self._cache["conflicts"] = cached
        return cached

    def has_arity_conflicts(self) -> bool:
        return bool(self.arity_conflicts())

    # -- shared analyses ------------------------------------------------
    def safety(self) -> SafetyReport:
        cached = self._cache.get("safety")
        if cached is None:
            cached = analyze_safety(self.program, self.transducer_orders)
            self._cache["safety"] = cached
        return cached

    def finiteness(self) -> FinitenessReport:
        cached = self._cache.get("finiteness")
        if cached is None:
            cached = classify_finiteness(self.program, self.transducer_orders)
            self._cache["finiteness"] = cached
        return cached

    def plan(self) -> Optional[Any]:
        """The compiled :class:`~repro.engine.plan.ProgramPlan`, or ``None``."""
        if "plan" not in self._cache:
            plan: Optional[Any] = None
            if not self.has_arity_conflicts():
                from repro.engine.planner import compile_program

                try:
                    plan = compile_program(self.program)
                except ReproError:
                    plan = None
            self._cache["plan"] = plan
        return self._cache["plan"]

    def potentially_nonempty(self) -> Set[str]:
        """Predicates that can possibly hold a fact.

        Base predicates are assumed nonempty unless a database is given
        (then a base predicate is nonempty exactly when its relation
        exists and has rows); the IDB part is the least fixpoint of "a
        head is nonempty when every body atom's predicate is".
        """
        cached = self._cache.get("nonempty")
        if cached is None:
            if self.database is not None:
                cached = {
                    predicate
                    for predicate in self.database.predicates()
                    if len(self.database.relation(predicate)) > 0
                }
            else:
                cached = set(self.program.base_predicates())
            changed = True
            while changed:
                changed = False
                for clause in self.program:
                    head = clause.head.predicate
                    if head in cached:
                        continue
                    if all(atom.predicate in cached for atom in clause.body_atoms()):
                        cached.add(head)
                        changed = True
            self._cache["nonempty"] = cached
        return cached


@dataclass(frozen=True)
class ArityConflict:
    """A predicate used with two different arities (or against its relation)."""

    predicate: str
    first_arity: int
    first_atom: Optional[Atom]  # None when the first use is the database relation
    conflict_arity: int
    conflict_atom: Optional[Atom]
    conflict_role: str


def _find_arity_conflicts(context: LintContext) -> List[ArityConflict]:
    first: Dict[str, Tuple[int, Atom]] = {}
    conflicts: List[ArityConflict] = []
    reported: Set[str] = set()
    for atom, _clause, role in context.atom_occurrences():
        seen = first.get(atom.predicate)
        if seen is None:
            first[atom.predicate] = (atom.arity, atom)
        elif seen[0] != atom.arity and atom.predicate not in reported:
            reported.add(atom.predicate)
            conflicts.append(
                ArityConflict(
                    predicate=atom.predicate,
                    first_arity=seen[0],
                    first_atom=seen[1],
                    conflict_arity=atom.arity,
                    conflict_atom=atom,
                    conflict_role=role,
                )
            )
    if context.database is not None:
        for predicate in context.database.predicates():
            seen = first.get(predicate)
            if seen is None or predicate in reported:
                continue
            relation_arity = context.database.relation(predicate).arity
            if relation_arity != seen[0]:
                reported.add(predicate)
                conflicts.append(
                    ArityConflict(
                        predicate=predicate,
                        first_arity=relation_arity,
                        first_atom=None,
                        conflict_arity=seen[0],
                        conflict_atom=seen[1],
                        conflict_role="database relation",
                    )
                )
    return conflicts


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
CheckFunction = Callable[[LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, severity, documentation, check."""

    code: str
    name: str
    severity: str
    summary: str
    check: CheckFunction
    paper: Optional[str] = None


#: Registration-ordered map from code to rule (codes are unique).
RULES: Dict[str, LintRule] = {}


def lint_rule(
    code: str,
    name: str,
    severity: str,
    summary: str,
    paper: Optional[str] = None,
) -> Callable[[CheckFunction], CheckFunction]:
    """Register ``check`` under a stable code; returns it unchanged."""

    def register(check: CheckFunction) -> CheckFunction:
        if code in RULES:
            raise ValueError(f"duplicate lint rule code {code!r}")
        RULES[code] = LintRule(
            code=code, name=name, severity=severity, summary=summary,
            check=check, paper=paper,
        )
        return check

    return register


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, in registration (documentation) order."""
    return tuple(RULES.values())


def run_rules(
    context: LintContext, codes: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Run the registry (or a subset of codes) over a context."""
    selected = set(codes) if codes is not None else None
    diagnostics: List[Diagnostic] = []
    for rule in RULES.values():
        if selected is not None and rule.code not in selected:
            continue
        try:
            diagnostics.extend(rule.check(context))
        except ReproError:
            # A rule must never turn an analyzable program into a crash;
            # an engine-level refusal simply means the rule has nothing
            # to say about this program.
            continue
    return diagnostics


def _diag(
    code: str,
    message: str,
    *,
    clause: Optional[Clause] = None,
    span: Optional[SourceSpan] = None,
    predicate: Optional[str] = None,
    hint: Optional[str] = None,
) -> Diagnostic:
    if span is None and clause is not None:
        span = span_of(clause)
    return Diagnostic(
        code=code,
        severity=RULES[code].severity,
        message=message,
        predicate=predicate,
        clause=str(clause) if clause is not None else None,
        span=span,
        hint=hint,
    )


# ----------------------------------------------------------------------
# Tier 1: semantic errors
# ----------------------------------------------------------------------
@lint_rule(
    "SDL-E101",
    "undefined-predicate",
    SEVERITY_ERROR,
    "a body or query predicate has no defining clause and no database relation",
)
def _check_undefined_predicates(context: LintContext) -> Iterator[Diagnostic]:
    if context.database is None:
        return
    undefined = context.undefined_predicates()
    if not undefined:
        return
    known = sorted(context.known_predicates())
    seen: Set[str] = set()
    for atom, clause, role in context.atom_occurrences():
        predicate = atom.predicate
        if role == ROLE_HEAD or predicate not in undefined or predicate in seen:
            continue
        seen.add(predicate)
        where = "a query pattern" if role == ROLE_PATTERN else "a rule body"
        message = (
            f"predicate '{predicate}' is used in {where} but is never defined "
            "and has no database relation"
        )
        close = difflib.get_close_matches(predicate, known, n=1)
        hint = (
            f"did you mean '{close[0]}'?" if close
            else f"define '{predicate}' with a rule or load facts for it"
        )
        yield _diag(
            "SDL-E101",
            message,
            clause=clause,
            span=span_of(atom) if role != ROLE_PATTERN else None,
            predicate=predicate,
            hint=hint,
        )


@lint_rule(
    "SDL-E102",
    "arity-conflict",
    SEVERITY_ERROR,
    "a predicate is used with two different arities (or disagrees with its relation)",
)
def _check_arity_conflicts(context: LintContext) -> Iterator[Diagnostic]:
    for conflict in context.arity_conflicts():
        predicate = conflict.predicate
        if conflict.first_atom is None:
            first_use = f"the database relation '{predicate}'"
        else:
            first_span = span_of(conflict.first_atom)
            first_use = f"{predicate}/{conflict.first_arity}"
            if first_span is not None:
                first_use += f" (first used at line {first_span.line})"
        message = (
            f"predicate '{predicate}' is used with conflicting arities: "
            f"{predicate}/{conflict.conflict_arity} here does not match {first_use}"
        )
        conflict_atom = conflict.conflict_atom
        span = (
            span_of(conflict_atom)
            if conflict_atom is not None and conflict.conflict_role != ROLE_PATTERN
            else None
        )
        yield _diag(
            "SDL-E102",
            message,
            span=span,
            predicate=predicate,
            hint="every use of a predicate must have the same number of arguments",
        )


@lint_rule(
    "SDL-E103",
    "range-restriction",
    SEVERITY_ERROR,
    "a head sequence variable occurs in no body literal",
    paper="Section 4 (declarative semantics enumerates it over the whole extended domain)",
)
def _check_range_restriction(context: LintContext) -> Iterator[Diagnostic]:
    for clause in context.program:
        bound: Set[str] = set()
        for literal in clause.body:
            bound |= literal.sequence_variables()
        unbound = sorted(clause.head.sequence_variables() - bound)
        if not unbound:
            continue
        names = ", ".join(unbound)
        plural = "s" if len(unbound) > 1 else ""
        yield _diag(
            "SDL-E103",
            f"head sequence variable{plural} {names} of "
            f"'{clause.head.predicate}' occur{'' if plural else 's'} in no body literal: "
            "the head is enumerated over the entire extended domain",
            clause=clause,
            span=span_of(clause.head),
            predicate=clause.head.predicate,
            hint=f"add a body atom that binds {names} (a guard such as dom({unbound[0]}))",
        )


# ----------------------------------------------------------------------
# Tier 2a: paper-theory warnings
# ----------------------------------------------------------------------
def _cycle_witness(program: Program, cycle: List[str]) -> Optional[Clause]:
    """A constructive clause that realizes an edge of the cycle."""
    members = set(cycle)
    for clause in program:
        if (
            clause.is_constructive()
            and clause.head.predicate in members
            and clause.body_predicates() & members
        ):
            return clause
    for clause in program:
        if clause.head.predicate in members:
            return clause
    return None


@lint_rule(
    "SDL-W201",
    "possibly-infinite",
    SEVERITY_WARNING,
    "the static classifier cannot certify a finite least fixpoint",
    paper="Theorem 2 (finiteness is fully undecidable); Corollary 2",
)
def _check_possibly_infinite(context: LintContext) -> Iterator[Diagnostic]:
    report = context.finiteness()
    if report.verdict is not FinitenessVerdict.POSSIBLY_INFINITE:
        return
    witness: Optional[Clause] = None
    for cycle in report.safety.constructive_cycles:
        witness = _cycle_witness(context.program, cycle)
        if witness is not None:
            break
    yield _diag(
        "SDL-W201",
        "the program may have an infinite least fixpoint: constructive "
        "recursion is present and finiteness is undecidable (Theorem 2)",
        clause=witness,
        predicate=witness.head.predicate if witness is not None else None,
        hint="evaluate under EvaluationLimits, or restructure to be strongly safe",
    )


@lint_rule(
    "SDL-W202",
    "constructive-cycle",
    SEVERITY_WARNING,
    "recursion through sequence construction: the program is not strongly safe",
    paper="Definition 10; Theorems 8-9 bound strongly safe programs",
)
def _check_constructive_cycles(context: LintContext) -> Iterator[Diagnostic]:
    for cycle in context.safety().constructive_cycles:
        rendered = " -> ".join(cycle + [cycle[0]])
        witness = _cycle_witness(context.program, cycle)
        yield _diag(
            "SDL-W202",
            f"constructive cycle {rendered}: recursion passes through "
            "sequence construction, so the program is not strongly safe",
            clause=witness,
            predicate=cycle[0],
            hint="move the constructive step out of the recursion, or bound it",
        )


@lint_rule(
    "SDL-W203",
    "unstratified-construction",
    SEVERITY_WARNING,
    "the program cannot be stratified with respect to construction",
    paper="Section 5; proof of Theorem 8",
)
def _check_unstratified(context: LintContext) -> Iterator[Diagnostic]:
    cycles = context.safety().constructive_cycles
    if not cycles:
        return
    rendered = "; ".join(" -> ".join(cycle + [cycle[0]]) for cycle in cycles)
    witness = _cycle_witness(context.program, cycles[0])
    yield _diag(
        "SDL-W203",
        "the program cannot be stratified by construction: "
        f"constructive cycle(s) {rendered}",
        clause=witness,
        hint="stratification by construction coincides with strong safety "
        "(no constructive cycles)",
    )


@lint_rule(
    "SDL-W204",
    "unguarded-clause",
    SEVERITY_WARNING,
    "a sequence variable occurs only inside indexed terms or the head",
    paper="Appendix B; Theorem 10 (the guarded transformation)",
)
def _check_unguarded(context: LintContext) -> Iterator[Diagnostic]:
    for clause in unguarded_clauses(context.program):
        names = ", ".join(sorted(clause.unguarded_sequence_variables()))
        yield _diag(
            "SDL-W204",
            f"clause is not guarded: sequence variable(s) {names} never occur "
            "as a bare argument of a body atom, so derivations are sensitive "
            "to the extended active domain",
            clause=clause,
            predicate=clause.head.predicate,
            hint="guard_program() adds dom(...) guards mechanically (Theorem 10)",
        )


# ----------------------------------------------------------------------
# Tier 2b: hygiene hints
# ----------------------------------------------------------------------
def _count_index_occurrences(term: IndexTerm, counts: Dict[Tuple[str, str], int]) -> None:
    if isinstance(term, IndexVariable):
        key = ("index", term.name)
        counts[key] = counts.get(key, 0) + 1
    elif isinstance(term, IndexSum):
        _count_index_occurrences(term.left, counts)
        _count_index_occurrences(term.right, counts)


def _count_term_occurrences(term: SequenceTerm, counts: Dict[Tuple[str, str], int]) -> None:
    if isinstance(term, SequenceVariable):
        key = ("sequence", term.name)
        counts[key] = counts.get(key, 0) + 1
    elif isinstance(term, IndexedTerm):
        _count_term_occurrences(term.base, counts)
        _count_index_occurrences(term.lo, counts)
        if term.hi is not term.lo:  # the shorthand s[n] shares one index term
            _count_index_occurrences(term.hi, counts)
    elif isinstance(term, ConcatTerm):
        for part in term.parts:
            _count_term_occurrences(part, counts)
    elif isinstance(term, TransducerTerm):
        for arg in term.args:
            _count_term_occurrences(arg, counts)


def _variable_occurrences(
    clause: Clause,
) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], int]]:
    """Occurrence counts of every variable, split into head and body."""
    head_counts: Dict[Tuple[str, str], int] = {}
    body_counts: Dict[Tuple[str, str], int] = {}
    for arg in clause.head.args:
        _count_term_occurrences(arg, head_counts)
    for literal in clause.body:
        if isinstance(literal, Atom):
            for arg in literal.args:
                _count_term_occurrences(arg, body_counts)
        elif isinstance(literal, Comparison):
            _count_term_occurrences(literal.left, body_counts)
            _count_term_occurrences(literal.right, body_counts)
    return head_counts, body_counts


@lint_rule(
    "SDL-H301",
    "singleton-variable",
    SEVERITY_HINT,
    "a variable occurs exactly once, in the body (often a typo)",
)
def _check_singletons(context: LintContext) -> Iterator[Diagnostic]:
    for clause in context.program:
        head_counts, body_counts = _variable_occurrences(clause)
        singletons = sorted(
            name
            for (kind, name), count in body_counts.items()
            if count == 1
            and not name.startswith("_")
            and head_counts.get((kind, name), 0) == 0
        )
        if not singletons:
            continue
        names = ", ".join(singletons)
        plural = "s" if len(singletons) > 1 else ""
        yield _diag(
            "SDL-H301",
            f"singleton variable{plural} {names}: each occurs exactly once "
            "in the clause",
            clause=clause,
            predicate=clause.head.predicate,
            hint=f"rename to _{singletons[0]} if the value is intentionally unused",
        )


@lint_rule(
    "SDL-H302",
    "duplicate-clause",
    SEVERITY_HINT,
    "a clause repeats an earlier clause verbatim",
)
def _check_duplicates(context: LintContext) -> Iterator[Diagnostic]:
    seen: Dict[Clause, Clause] = {}
    for clause in context.program:
        original = seen.get(clause)
        if original is None:
            seen[clause] = clause
            continue
        original_span = span_of(original)
        where = f" at line {original_span.line}" if original_span is not None else ""
        yield _diag(
            "SDL-H302",
            f"duplicate clause: repeats the clause{where} verbatim",
            clause=clause,
            predicate=clause.head.predicate,
            hint="remove the repeated clause; it cannot derive anything new",
        )


@lint_rule(
    "SDL-H303",
    "dead-clause",
    SEVERITY_HINT,
    "a body predicate can never hold a fact, so the clause can never fire",
)
def _check_dead_clauses(context: LintContext) -> Iterator[Diagnostic]:
    nonempty = context.potentially_nonempty()
    undefined = context.undefined_predicates()  # already SDL-E101
    for clause in context.program:
        dead = [
            atom
            for atom in clause.body_atoms()
            if atom.predicate not in nonempty and atom.predicate not in undefined
        ]
        if not dead:
            continue
        atom = dead[0]
        yield _diag(
            "SDL-H303",
            f"clause can never fire: predicate '{atom.predicate}' can never "
            "contain a fact (it is unreachable from any EDB fact)",
            clause=clause,
            span=span_of(atom) or span_of(clause),
            predicate=clause.head.predicate,
            hint=f"load facts for '{atom.predicate}' or give it a non-circular rule",
        )


# ----------------------------------------------------------------------
# Tier 3: performance lints (read off the compiled plan)
# ----------------------------------------------------------------------
_FALLBACK_HINTS: Dict[str, str] = {}


def _fallback_hints() -> Dict[str, str]:
    if not _FALLBACK_HINTS:
        from repro.engine import kernels

        _FALLBACK_HINTS.update(
            {
                kernels.REASON_ATOM_TERM: (
                    "only bare variables and constants in body atoms batch-vectorize; "
                    "indexed terms force the per-tuple path"
                ),
                kernels.REASON_HEAD_TERM: (
                    "constructive or indexed head arguments are built per tuple"
                ),
                kernels.REASON_HEAD_ENUMERATION: (
                    "bind every head variable in the body to avoid domain enumeration"
                ),
                kernels.REASON_COMPARE_TERM: (
                    "comparisons over indexed terms are evaluated per tuple"
                ),
            }
        )
    return _FALLBACK_HINTS


@lint_rule(
    "SDL-P401",
    "kernel-fallback",
    SEVERITY_PERF,
    "the clause cannot run on the batch kernels and fires per-tuple",
)
def _check_kernel_fallback(context: LintContext) -> Iterator[Diagnostic]:
    plan = context.plan()
    if plan is None:
        return
    from repro.engine.kernels import batch_classification

    for clause_plan in plan.program_plans:
        clause = clause_plan.clause
        if not clause.body_atoms():
            continue  # facts and pure-comparison rules have nothing to batch
        batchable, reason = batch_classification(clause_plan)
        if batchable:
            continue
        yield _diag(
            "SDL-P401",
            f"clause runs on the per-tuple path, not the batch kernels: {reason}",
            clause=clause,
            predicate=clause.head.predicate,
            hint=_fallback_hints().get(reason or ""),
        )


@lint_rule(
    "SDL-P402",
    "cartesian-product",
    SEVERITY_PERF,
    "a join shares no bound variables with the preceding steps",
)
def _check_cartesian_products(context: LintContext) -> Iterator[Diagnostic]:
    plan = context.plan()
    if plan is None:
        return
    for clause_plan in plan.program_plans:
        for atom, kind in _unkeyed_scans(clause_plan):
            if kind != "cartesian":
                continue
            yield _diag(
                "SDL-P402",
                f"scan of {atom} shares no variable with the steps before it: "
                "the join is a cartesian product",
                clause=clause_plan.clause,
                span=span_of(atom) or span_of(clause_plan.clause),
                predicate=clause_plan.clause.head.predicate,
                hint="join the atoms through a shared variable, or split the rule",
            )


@lint_rule(
    "SDL-P403",
    "unusable-index",
    SEVERITY_PERF,
    "a scan references bound variables but no argument is fully evaluable",
)
def _check_unusable_index(context: LintContext) -> Iterator[Diagnostic]:
    plan = context.plan()
    if plan is None:
        return
    for clause_plan in plan.program_plans:
        for atom, kind in _unkeyed_scans(clause_plan):
            if kind != "index-miss":
                continue
            yield _diag(
                "SDL-P403",
                f"full scan of {atom} although some of its variables are "
                "already bound: no argument is fully evaluable, so the scan "
                "can never use a composite index",
                clause=clause_plan.clause,
                span=span_of(atom) or span_of(clause_plan.clause),
                predicate=clause_plan.clause.head.predicate,
                hint="bind the indexed positions first (e.g. with an equality) "
                "so at least one argument becomes a lookup key",
            )


def _unkeyed_scans(clause_plan: Any) -> List[Tuple[Atom, str]]:
    """Classify each unkeyed (full) scan of a plan.

    Replays the planner's static binding propagation over the plan steps:
    a full scan after the first one is a ``cartesian`` join when the atom
    shares no variable with everything bound so far, and an ``index-miss``
    when it shares variables but none of its arguments was evaluable.
    """
    from repro.engine.plan import AtomScan, BindEquality, EnumerateComparison

    findings: List[Tuple[Atom, str]] = []
    bound: Set[str] = set(clause_plan.seed_sequences)
    seen_scan = False
    for step in clause_plan.steps:
        if isinstance(step, AtomScan):
            atom = step.atom
            variables = set(atom.sequence_variables() | atom.index_variables())
            if not step.bound_columns:
                if seen_scan and not (variables & bound):
                    findings.append((atom, "cartesian"))
                elif variables & bound:
                    findings.append((atom, "index-miss"))
            seen_scan = True
            bound |= variables
        elif isinstance(step, BindEquality):
            bound.add(step.variable)
        elif isinstance(step, EnumerateComparison):
            bound |= set(step.sequence_vars) | set(step.index_vars)
    return findings


__all__ = [
    "ArityConflict",
    "LintContext",
    "LintRule",
    "ROLE_BODY",
    "ROLE_HEAD",
    "ROLE_PATTERN",
    "RULES",
    "all_rules",
    "lint_rule",
    "run_rules",
]
