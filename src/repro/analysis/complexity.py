"""Static complexity reports: the Theorem 3/8/9 bounds as an analysis.

Sections 6 and 8 of the paper present the machine order and the shape of the
dependency graph as "levers with which users can tune the data complexity of
the query language": no construction gives PTIME data complexity with a
fixed domain (Theorem 3); strong safety with order <= 2 gives a polynomially
bounded minimal model and exactly the PTIME sequence functions (Theorem 8,
Corollary 3); order 3 gives a hyperexponentially bounded minimal model and
exactly the elementary sequence functions (Theorem 9, Corollary 4);
constructive cycles void every guarantee (Theorem 2: finiteness is then
undecidable).

:func:`analyze_complexity` turns those results into a static report for a
concrete program: its order, its construction stratification, the
per-stratum growth class, the resulting data-complexity guarantee, and a
conservative numeric *envelope* on minimal-model size that benchmarks and
tests can check measured models against.  :func:`complexity_levers` lists
the concrete changes that would move a program into a cheaper class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.analysis.dependency_graph import build_dependency_graph
from repro.analysis.fragments import is_non_constructive
from repro.analysis.safety import analyze_safety, program_order
from repro.analysis.stratification import stratify_by_construction
from repro.language.clauses import Program


class DataComplexityClass(enum.Enum):
    """The guarantee the paper's theorems give for a program."""

    PTIME_FIXED_DOMAIN = "PTIME, domain never grows (Theorem 3)"
    PTIME = "PTIME, polynomially bounded minimal model (Theorem 8 / Corollary 3)"
    ELEMENTARY = "elementary, hyperexponentially bounded minimal model (Theorem 9 / Corollary 4)"
    NO_GUARANTEE = "no guarantee: constructive recursion (Theorem 2 territory)"

    def is_tractable(self) -> bool:
        """True for the PTIME classes."""
        return self in (
            DataComplexityClass.PTIME_FIXED_DOMAIN,
            DataComplexityClass.PTIME,
        )


#: Growth classes of one construction stratum (how much evaluating it can
#: enlarge the extended active domain).
GROWTH_NONE = "none"
GROWTH_POLYNOMIAL = "polynomial"
GROWTH_HYPEREXPONENTIAL = "hyperexponential"


@dataclass
class StratumGrowth:
    """Growth contributed by one stratum of the construction stratification."""

    index: int
    predicates: List[str]
    constructive: bool
    order: int
    growth: str

    def __str__(self) -> str:
        kind = f"constructive, order {self.order}" if self.constructive else "non-constructive"
        return f"stratum {self.index} ({kind}): {', '.join(self.predicates)} -- growth {self.growth}"


@dataclass
class ComplexityReport:
    """The static complexity analysis of a program."""

    order: int
    non_constructive: bool
    strongly_safe: bool
    data_complexity: DataComplexityClass
    strata: List[StratumGrowth] = field(default_factory=list)
    constructive_strata: int = 0
    envelope_degree: Optional[int] = None
    hyperexponential_level: Optional[int] = None
    notes: List[str] = field(default_factory=list)

    def model_size_envelope(self, database_size: int) -> Optional[int]:
        """A conservative upper envelope on minimal-model size (Def. 11 size).

        For the PTIME classes the envelope is ``max(database_size, 2) **
        envelope_degree``; for the elementary class it is the
        ``hyperexponential_level``-fold iterated exponential of that
        polynomial; with no guarantee it is ``None``.  The envelope is not
        the paper's (unstated) constant-precise bound -- it is a concrete
        polynomial/hyperexponential that Theorems 8/9 say must exist, chosen
        generously so measured models can be checked against it.
        """
        if self.data_complexity is DataComplexityClass.NO_GUARANTEE:
            return None
        base = max(database_size, 2) ** (self.envelope_degree or 1)
        if self.data_complexity is DataComplexityClass.ELEMENTARY:
            value = base
            for _ in range(self.hyperexponential_level or 1):
                value = 2 ** min(value, 64)  # clamp: the envelope is astronomically loose anyway
            return value
        return base

    def describe(self) -> str:
        lines = [
            f"program order: {self.order}",
            f"non-constructive: {'yes' if self.non_constructive else 'no'}",
            f"strongly safe: {'yes' if self.strongly_safe else 'no'}",
            f"data complexity: {self.data_complexity.value}",
        ]
        if self.envelope_degree is not None:
            lines.append(f"model-size envelope degree: {self.envelope_degree}")
        for stratum in self.strata:
            lines.append(f"  {stratum}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def analyze_complexity(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> ComplexityReport:
    """Classify a program's data complexity using the paper's theorems."""
    orders = dict(transducer_orders or {})
    order = program_order(program, orders)
    safety = analyze_safety(program, orders)
    non_constructive = is_non_constructive(program)

    strata_growth: List[StratumGrowth] = []
    constructive_strata = 0
    notes: List[str] = []

    if non_constructive:
        data_complexity = DataComplexityClass.PTIME_FIXED_DOMAIN
        envelope_degree: Optional[int] = _fixed_domain_degree(program)
        hyper_level: Optional[int] = None
    elif not safety.strongly_safe:
        data_complexity = DataComplexityClass.NO_GUARANTEE
        envelope_degree = None
        hyper_level = None
        cycles = "; ".join(
            " -> ".join(cycle + [cycle[0]]) for cycle in safety.constructive_cycles
        )
        notes.append(f"constructive cycle(s): {cycles}")
    else:
        stratification = stratify_by_construction(program)
        envelope_degree = _fixed_domain_degree(program)
        hyper_level = 0
        for index, stratum in enumerate(stratification.strata):
            constructive = stratum.is_constructive()
            stratum_order = program_order(stratum, orders) if constructive else 0
            if not constructive:
                growth = GROWTH_NONE
            elif stratum_order <= 2:
                growth = GROWTH_POLYNOMIAL
                constructive_strata += 1
                # An order-2 stratum can square lengths (Theorem 4), and the
                # subsequence closure squares again: double the degree.
                envelope_degree *= 2 if stratum_order == 2 else 1
                envelope_degree += 2
            else:
                growth = GROWTH_HYPEREXPONENTIAL
                constructive_strata += 1
                hyper_level += 2  # Theorem 4: one order-3 machine costs hyp_2
            strata_growth.append(
                StratumGrowth(
                    index=index,
                    predicates=sorted(stratum.head_predicates()),
                    constructive=constructive,
                    order=stratum_order,
                    growth=growth,
                )
            )
        if hyper_level:
            data_complexity = DataComplexityClass.ELEMENTARY
        else:
            data_complexity = DataComplexityClass.PTIME
    return ComplexityReport(
        order=order,
        non_constructive=non_constructive,
        strongly_safe=safety.strongly_safe,
        data_complexity=data_complexity,
        strata=strata_growth,
        constructive_strata=constructive_strata,
        envelope_degree=envelope_degree,
        hyperexponential_level=hyper_level or None,
        notes=notes,
    )


def complexity_levers(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> List[str]:
    """Concrete changes that would move the program into a cheaper class.

    This is the practical reading of the paper's "levers": break
    constructive cycles (Definition 10), lower transducer order (Theorems 8
    vs 9), or drop construction entirely (Theorem 3).
    """
    orders = dict(transducer_orders or {})
    report = analyze_complexity(program, orders)
    suggestions: List[str] = []
    if report.data_complexity is DataComplexityClass.NO_GUARANTEE:
        graph = build_dependency_graph(program)
        for cycle in graph.constructive_cycles():
            rendered = " -> ".join(cycle + [cycle[0]])
            suggestions.append(
                f"break the constructive cycle {rendered} (move the construction "
                "inside a transducer, or make the recursion structural) to regain "
                "a finite semantics (Definition 10 / Corollary 2)"
            )
    if report.data_complexity is DataComplexityClass.ELEMENTARY:
        offenders = sorted(name for name, order in orders.items() if order >= 3)
        listed = ", ".join(offenders) if offenders else "the order-3 transducer(s)"
        suggestions.append(
            f"replace {listed} by order-2 machines to drop from elementary to "
            "PTIME (Theorem 8 vs Theorem 9)"
        )
    if report.data_complexity is DataComplexityClass.PTIME and report.constructive_strata:
        suggestions.append(
            "the program is already PTIME; removing the remaining construction "
            "would additionally freeze the active domain (Theorem 3)"
        )
    if not suggestions:
        suggestions.append("no cheaper class is available without changing the query")
    return suggestions


def _fixed_domain_degree(program: Program) -> int:
    """Degree of the polynomial bounding the number of facts with a fixed
    domain: at most ``max arity`` tuples over the domain per predicate, and
    the subsequence closure itself is quadratic (Section 2.1)."""
    max_arity = max((clause.head.arity for clause in program), default=1)
    return max(2, max_arity + 1)
