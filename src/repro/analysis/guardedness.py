"""Guarded programs and the guarded transformation (Appendix B, Theorem 10).

A clause is *guarded* when every sequence variable occurring in it also
occurs in the body as a direct argument of some predicate atom; a program is
guarded when all its clauses are.  Guarded programs are insensitive to
growth of the extended active domain, which is why several proofs in the
paper (Theorem 7, Section 8) assume guardedness.

Theorem 10 shows the assumption is harmless: every program ``P`` has a
guarded program ``P^G`` expressing the same queries and preserving
finiteness.  The construction introduces a fresh ``dom`` predicate holding
the extended active domain:

* each original clause gets ``dom(X)`` subgoals for all its sequence
  variables;
* ``dom(X[M:N]) :- dom(X)`` closes ``dom`` under contiguous subsequences;
* for every predicate mentioned in the program or the database schema,
  ``dom(Xi) :- p(X1, ..., Xm)`` adds the sequences of every fact.

:func:`guard_program` implements exactly this construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.language.atoms import Atom
from repro.language.clauses import Clause, Program
from repro.language.terms import (
    IndexVariable,
    IndexedTerm,
    SequenceVariable,
)


def is_guarded(program: Program) -> bool:
    """True iff every clause of the program is guarded."""
    return program.is_guarded()


def unguarded_clauses(program: Program) -> List[Clause]:
    """The clauses that contain at least one unguarded sequence variable."""
    return [clause for clause in program if not clause.is_guarded()]


def _fresh_dom_name(program: Program, extra_predicates: Iterable[str]) -> str:
    """Pick a name for the domain predicate that does not clash."""
    used = set(program.predicates()) | set(extra_predicates)
    name = "dom"
    counter = 0
    while name in used:
        counter += 1
        name = f"dom_{counter}"
    return name


def guard_program(
    program: Program,
    base_predicates: Optional[Dict[str, int]] = None,
    dom_predicate: Optional[str] = None,
) -> Tuple[Program, str]:
    """The guarded transformation ``P -> P^G`` of Appendix B.

    Parameters
    ----------
    program:
        The program to transform.
    base_predicates:
        Arities of the database predicates (``{name: arity}``).  Predicates
        already mentioned in the program are discovered automatically; pass
        this when the database schema has relations the program never
        mentions explicitly.
    dom_predicate:
        Name to use for the domain predicate; by default a non-clashing name
        starting with ``dom`` is chosen.

    Returns
    -------
    (guarded_program, dom_name):
        The transformed program and the name of the domain predicate it uses.
    """
    base_predicates = dict(base_predicates or {})
    arities = program.signatures()
    for name, arity in base_predicates.items():
        existing = arities.get(name)
        if existing is None:
            arities[name] = arity

    dom_name = dom_predicate or _fresh_dom_name(program, base_predicates)

    clauses: List[Clause] = []

    # (1) Original clauses, with dom(X) subgoals for every sequence variable.
    for clause in program:
        guards = [
            Atom(dom_name, [SequenceVariable(name)])
            for name in sorted(clause.sequence_variables())
        ]
        clauses.append(Clause(clause.head, list(clause.body) + guards))

    # (2) dom is closed under contiguous subsequences.
    subsequence_clause = Clause(
        Atom(
            dom_name,
            [
                IndexedTerm(
                    SequenceVariable("X"), IndexVariable("M"), IndexVariable("N")
                )
            ],
        ),
        [Atom(dom_name, [SequenceVariable("X")])],
    )
    clauses.append(subsequence_clause)

    # (3) dom collects every sequence of every fact of every predicate
    #     mentioned in the program or the database schema.
    for predicate in sorted(arities):
        if predicate == dom_name:
            continue
        arity = arities[predicate]
        variables = [SequenceVariable(f"X{i + 1}") for i in range(arity)]
        body_atom = Atom(predicate, variables)
        for i in range(arity):
            clauses.append(Clause(Atom(dom_name, [variables[i]]), [body_atom]))

    return Program(clauses), dom_name


def strip_dom_facts(facts: Iterable, dom_predicate: str) -> List:
    """Filter ``dom`` facts out of a fact iterable (the ``I^-`` operation of
    Definition 14 in Appendix B)."""
    return [fact for fact in facts if fact[0] != dom_predicate]
