"""Stratification with respect to sequence construction.

Section 5 of the paper discusses *stratified construction*: requiring that
programs be stratified with respect to construction (in analogy with
stratified negation) guarantees a finite semantics because each new sequence
is produced by a bounded number of concatenations.  The proof of Theorem 8
makes the idea precise for strongly safe programs: linearize the strongly
connected components of the dependency graph and evaluate the induced strata
bottom-up; constructive rules never participate in recursion, so each
constructive stratum needs to be applied only once.

:func:`stratify_by_construction` computes that stratification.  It succeeds
exactly when the program is strongly safe (no constructive cycles); for
other programs it raises :class:`~repro.errors.SafetyError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.dependency_graph import build_dependency_graph
from repro.errors import SafetyError
from repro.language.clauses import Clause, Program


@dataclass
class ConstructionStratification:
    """A stratification of a program with respect to construction.

    Attributes
    ----------
    strata:
        The sub-programs, bottom-up: the clauses of stratum ``i`` only use
        predicates defined in strata ``<= i`` (base predicates belong to the
        database).
    predicate_stratum:
        Map from defined predicate to its stratum index.
    """

    strata: List[Program] = field(default_factory=list)
    predicate_stratum: Dict[str, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Number of strata."""
        return len(self.strata)

    def constructive_strata(self) -> List[int]:
        """Indices of strata containing constructive clauses."""
        return [
            index
            for index, stratum in enumerate(self.strata)
            if stratum.is_constructive()
        ]

    def describe(self) -> str:
        lines = []
        for index, stratum in enumerate(self.strata):
            marker = " (constructive)" if stratum.is_constructive() else ""
            predicates = sorted(stratum.head_predicates())
            lines.append(f"stratum {index}{marker}: {', '.join(predicates)}")
        return "\n".join(lines)


def stratify_by_construction(program: Program) -> ConstructionStratification:
    """Stratify a strongly safe program with respect to construction.

    The strata follow the linearized strongly connected components of the
    predicate dependency graph (proof of Theorem 8): each component becomes
    one stratum containing the clauses that define its predicates.
    Consecutive non-constructive components feeding into each other are kept
    as separate strata; this does not affect correctness and keeps the
    mapping to the paper's proof transparent.

    Raises
    ------
    SafetyError
        If the program has a constructive cycle (not strongly safe).
    """
    graph = build_dependency_graph(program)
    cycles = graph.constructive_cycles()
    if cycles:
        rendered = "; ".join(" -> ".join(cycle + [cycle[0]]) for cycle in cycles)
        raise SafetyError(
            f"cannot stratify: program has constructive cycle(s) {rendered}"
        )

    components = graph.linearized_components()
    defined = program.head_predicates()
    predicate_stratum: Dict[str, int] = {}
    strata: List[Program] = []
    for component in components:
        component_predicates = sorted(p for p in component if p in defined)
        if not component_predicates:
            continue  # base predicates live in the database, not in a stratum
        index = len(strata)
        clauses: List[Clause] = []
        for predicate in component_predicates:
            predicate_stratum[predicate] = index
            clauses.extend(program.clauses_for(predicate))
        strata.append(Program(clauses))
    return ConstructionStratification(strata=strata, predicate_stratum=predicate_stratum)


def is_stratified_by_construction(program: Program) -> bool:
    """True iff the program can be stratified with respect to construction.

    This coincides with strong safety (Definition 10): recursion is allowed,
    but never *through* a constructive clause.
    """
    try:
        stratify_by_construction(program)
    except SafetyError:
        return False
    return True
