"""Program diagnostics: stable codes, source spans, severities, reports.

The paper's central negative result (Theorem 2: finiteness of Sequence
Datalog is fully undecidable) is why it develops *static sufficient
conditions* — strong safety (Definition 10), stratification by
construction (Section 5), guardedness (Appendix B).  The analysis package
implements them as library functions; this module gives their findings —
plus practical semantic checks and planner-aware performance lints — a
stable identity so they can travel: through the CLI (``repro lint``), the
versioned TCP API (``LintRequest``/``LintResponse``) and CI gates.

A :class:`Diagnostic` is one finding: a stable code (``SDL-E101``), a
severity (``error`` / ``warning`` / ``perf`` / ``hint``), a message, the
predicate and clause concerned, a 1-based source span (threaded from the
lexer through the AST by :mod:`repro.language.parser`) and an optional
fix hint.  A :class:`DiagnosticReport` is the outcome of running the rule
registry (:mod:`repro.analysis.rules`) over a program; it renders either
as machine-readable payloads or as human output with caret-underlined
source excerpts.

The code space is partitioned by tier:

* ``SDL-E1xx`` — semantic errors (broken programs);
* ``SDL-W2xx`` — paper-theory warnings (legal but possibly non-terminating
  or domain-sensitive programs);
* ``SDL-H3xx`` — hygiene hints (suspicious but harmless constructs);
* ``SDL-P4xx`` — performance lints read off the compiled plan.

See ``docs/DIAGNOSTICS.md`` for the full code table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import ParseError, ReproError
from repro.language.atoms import Atom
from repro.language.clauses import Program
from repro.language.parser import parse_atom, parse_program
from repro.language.spans import SourceSpan

# ----------------------------------------------------------------------
# Severities
# ----------------------------------------------------------------------
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_PERF = "perf"
SEVERITY_HINT = "hint"

#: All severities, most severe first.
SEVERITIES: Tuple[str, ...] = (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SEVERITY_PERF,
    SEVERITY_HINT,
)

_SEVERITY_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}

#: The code reserved for programs that do not parse at all.
PARSE_ERROR_CODE = "SDL-E100"


# ----------------------------------------------------------------------
# Diagnostic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Diagnostic:
    """One finding of the lint pass.

    ``clause`` is the rendered text of the clause concerned (wire-friendly:
    the AST itself never crosses the API).  ``span`` is ``None`` for
    findings about programmatically built clauses or about the program as
    a whole.
    """

    code: str
    severity: str
    message: str
    predicate: Optional[str] = None
    clause: Optional[str] = None
    span: Optional[SourceSpan] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def severity_rank(self) -> int:
        """Position in :data:`SEVERITIES` (0 is most severe)."""
        return _SEVERITY_RANK[self.severity]

    def __str__(self) -> str:
        location = f"{self.span.line}:{self.span.column}: " if self.span else ""
        return f"{location}{self.code} {self.severity}: {self.message}"

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-friendly wire form of the diagnostic."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "predicate": self.predicate,
            "clause": self.clause,
            "span": self.span.to_payload() if self.span is not None else None,
            "hint": self.hint,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> Diagnostic:
        span_payload = payload.get("span")
        return cls(
            code=str(payload["code"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
            predicate=payload.get("predicate"),
            clause=payload.get("clause"),
            span=SourceSpan.from_payload(span_payload) if span_payload else None,
            hint=payload.get("hint"),
        )


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, int, int, str]:
    span = diagnostic.span
    line = span.line if span is not None else 1_000_000_000
    column = span.column if span is not None else 0
    return (diagnostic.severity_rank, line, column, diagnostic.code)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnosticReport:
    """The outcome of linting one program: an ordered set of diagnostics.

    Diagnostics are ordered by severity, then source position, then code,
    so reports are deterministic and the most urgent findings lead.
    """

    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.diagnostics, key=_sort_key))
        object.__setattr__(self, "diagnostics", ordered)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def clean(self) -> bool:
        """True when the lint pass found nothing at all."""
        return not self.diagnostics

    def with_severity(self, severity: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(SEVERITY_ERROR)

    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(SEVERITY_WARNING)

    def has_errors(self) -> bool:
        return bool(self.errors())

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> Tuple[str, ...]:
        """The distinct codes present, in report order."""
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.code not in seen:
                seen.append(diagnostic.code)
        return tuple(seen)

    def counts(self) -> Dict[str, int]:
        """Findings per severity (all severities present, possibly 0)."""
        totals = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity] += 1
        return totals

    def exit_code(self, strict: bool = False) -> int:
        """The process exit code ``repro lint`` maps this report to.

        ``2`` when any error-severity diagnostic is present; ``1`` when
        ``strict`` and any warning- or perf-severity diagnostic is present
        (hints never gate); ``0`` otherwise.
        """
        if self.has_errors():
            return 2
        if strict and any(
            d.severity in (SEVERITY_WARNING, SEVERITY_PERF) for d in self.diagnostics
        ):
            return 1
        return 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One line: ``3 diagnostics: 1 error, 2 warnings`` or ``clean``."""
        if self.clean:
            return "clean: no diagnostics"
        counts = self.counts()
        parts = []
        for severity in SEVERITIES:
            count = counts[severity]
            if count:
                suffix = "" if count == 1 or severity == "perf" else "s"
                parts.append(f"{count} {severity}{suffix}")
        total = len(self.diagnostics)
        noun = "diagnostic" if total == 1 else "diagnostics"
        return f"{total} {noun}: " + ", ".join(parts)

    def describe(self) -> str:
        """A compact, excerpt-free rendering (used by ``explain()``)."""
        lines = [str(diagnostic) for diagnostic in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def render(self, source: Optional[str] = None, filename: str = "<program>") -> str:
        """Human output: one block per diagnostic with a caret-underlined
        source excerpt when the program text is available."""
        source_lines = source.splitlines() if source is not None else None
        blocks: List[str] = []
        for diagnostic in self.diagnostics:
            blocks.append(_render_diagnostic(diagnostic, source_lines, filename))
        blocks.append(self.summary())
        return "\n".join(blocks)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "diagnostics": [d.to_payload() for d in self.diagnostics],
            "counts": self.counts(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> DiagnosticReport:
        return cls(
            diagnostics=tuple(
                Diagnostic.from_payload(item) for item in payload.get("diagnostics", [])
            )
        )


def _render_diagnostic(
    diagnostic: Diagnostic,
    source_lines: Optional[List[str]],
    filename: str,
) -> str:
    span = diagnostic.span
    if span is not None:
        header = (
            f"{filename}:{span.line}:{span.column}: "
            f"{diagnostic.code} {diagnostic.severity}: {diagnostic.message}"
        )
    else:
        header = f"{filename}: {diagnostic.code} {diagnostic.severity}: {diagnostic.message}"
    lines = [header]
    if span is not None and source_lines is not None and 1 <= span.line <= len(source_lines):
        text = source_lines[span.line - 1]
        gutter = f"{span.line:>5} | "
        lines.append(f"{gutter}{text}")
        if span.end_line == span.line:
            width = max(1, span.end_column - span.column + 1)
        else:
            width = max(1, len(text) - span.column + 1)
        underline = " " * (span.column - 1) + "^" * width
        lines.append(" " * (len(gutter) - 2) + "| " + underline)
    if diagnostic.hint:
        lines.append(f"      = hint: {diagnostic.hint}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_program(
    program: Union[str, Program],
    *,
    database: Optional[Any] = None,
    patterns: Iterable[Union[str, Atom]] = (),
    transducer_orders: Optional[Mapping[str, int]] = None,
    source: Optional[str] = None,
) -> DiagnosticReport:
    """Run the full rule registry over a program and return the report.

    ``program`` may be program text (a parse failure then becomes the
    single diagnostic ``SDL-E100`` instead of an exception) or a parsed
    :class:`~repro.language.clauses.Program`.  ``database`` (a
    :class:`~repro.database.database.SequenceDatabase`) and ``patterns``
    (query atoms, as text or parsed) are optional: some rules — undefined
    predicates, arity conflicts against relations, dead clauses — see
    more with them.  ``source`` overrides the program text used for
    excerpt rendering (normally picked up from ``program.source``).
    """
    from repro.analysis.rules import LintContext, run_rules

    if isinstance(program, str):
        source = program if source is None else source
        try:
            parsed = parse_program(program)
        except ParseError as error:
            return DiagnosticReport(diagnostics=(_parse_error_diagnostic(error),))
    else:
        parsed = program
        if source is None:
            parsed_source = getattr(parsed, "source", None)
            source = parsed_source if isinstance(parsed_source, str) else None

    pattern_atoms: List[Atom] = []
    pattern_diagnostics: List[Diagnostic] = []
    for pattern in patterns:
        if isinstance(pattern, Atom):
            pattern_atoms.append(pattern)
            continue
        try:
            pattern_atoms.append(parse_atom(pattern))
        except (ParseError, ReproError) as error:
            pattern_diagnostics.append(
                Diagnostic(
                    code=PARSE_ERROR_CODE,
                    severity=SEVERITY_ERROR,
                    message=f"query pattern {pattern!r} does not parse: {error}",
                )
            )

    context = LintContext(
        program=parsed,
        source=source,
        database=database,
        patterns=tuple(pattern_atoms),
        transducer_orders=dict(transducer_orders) if transducer_orders else None,
    )
    diagnostics = list(run_rules(context)) + pattern_diagnostics
    return DiagnosticReport(diagnostics=tuple(diagnostics))


def _parse_error_diagnostic(error: ParseError) -> Diagnostic:
    line = getattr(error, "line", None)
    column = getattr(error, "column", None)
    span = None
    if isinstance(line, int) and isinstance(column, int):
        span = SourceSpan(line, column, line, column)
    return Diagnostic(
        code=PARSE_ERROR_CODE,
        severity=SEVERITY_ERROR,
        message=f"program does not parse: {error}",
        span=span,
        hint="fix the syntax error; nothing else can be checked until the program parses",
    )


def explain_with_diagnostics(
    program: Program,
    transducer_orders: Optional[Mapping[str, int]] = None,
) -> str:
    """The compiled plan explanation followed by a diagnostics section.

    This is the shared backing of ``engine_api.explain()`` and the API
    service's ``ExplainRequest`` so local and remote callers read the
    same text.
    """
    from repro.engine.planner import compile_program

    plan_text = compile_program(program).explain()
    report = lint_program(program, transducer_orders=transducer_orders)
    lines = [plan_text, "", "diagnostics:"]
    if report.clean:
        lines.append("  none")
    else:
        for diagnostic in report:
            lines.append(f"  {diagnostic}")
        lines.append(f"  ({report.summary()})")
    return "\n".join(lines)


def severity_rank(severity: str) -> int:
    """Position of a severity in :data:`SEVERITIES` (0 is most severe)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(f"unknown severity {severity!r}") from None


__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "PARSE_ERROR_CODE",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_HINT",
    "SEVERITY_PERF",
    "SEVERITY_WARNING",
    "explain_with_diagnostics",
    "lint_program",
    "severity_rank",
]
