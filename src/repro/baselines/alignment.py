"""Multi-tape two-way automata: the machine model behind alignment logic.

Section 1.1 of the paper discusses the alignment logic of Grahne, Nykanen
and Ukkonen [20], "an elegant and expressive first-order logic for a
relational model with sequences" whose computational counterpart is *the
class of multi-tape, nondeterministic, two-way, finite-state automata, which
are used to accept or reject tuples of sequences*.  The paper's criticism is
that the nondeterministic model makes query evaluation problematic and that
the model accepts tuples but never constructs new sequences.

This module implements that machine model so the comparison is executable:

* an :class:`AlignmentAutomaton` has ``m`` read-only input tapes, each with
  a left end marker ``⊢`` and a right end marker ``⊣``;
* a transition maps ``(state, scanned symbols)`` to a set of
  ``(next state, per-tape head moves)`` choices where each move is
  :data:`LEFT`, :data:`RIGHT` or :data:`STAY_PUT`;
* a tuple of sequences is **accepted** when some computation path reaches an
  accepting state.

Because heads can move both ways, the configuration space (state x head
positions) is finite but computations can loop; acceptance is therefore
decided by a breadth-first search over configurations rather than by
simulating individual runs, which also side-steps the evaluation problem the
paper points out (for the acceptance question only).

The ready-made acceptors at the bottom (equality, suffix, scattered
subsequence, a^n b^n c^n) are the standard textbook constructions and are
used by tests and by ``benchmarks/bench_baselines.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.sequences import as_sequence

#: Left end-of-tape marker (the automaton cannot move left of it).
LEFT_MARKER = "⊢"

#: Right end-of-tape marker (the automaton cannot move right of it).
RIGHT_MARKER = "⊣"

#: Head command: move one cell to the left.
LEFT = "<"

#: Head command: move one cell to the right.
RIGHT = ">"

#: Head command: stay on the current cell.
STAY_PUT = "-"

_MOVES = {LEFT: -1, RIGHT: 1, STAY_PUT: 0}


@dataclass(frozen=True)
class AlignmentTransition:
    """One nondeterministic choice: the next state and one move per head."""

    next_state: str
    moves: Tuple[str, ...]

    def __post_init__(self) -> None:
        for move in self.moves:
            if move not in _MOVES:
                raise TransducerDefinitionError(
                    f"invalid head move {move!r} (use LEFT, RIGHT or STAY_PUT)"
                )


class AlignmentAutomaton:
    """A multi-tape, nondeterministic, two-way finite automaton.

    Parameters
    ----------
    name:
        A human-readable name.
    num_tapes:
        The number of input tapes (the arity of the accepted relation).
    alphabet:
        The finite input alphabet (end markers are added automatically).
    initial_state / accepting_states:
        Control states; acceptance is by reaching an accepting state.
    transitions:
        ``(state, scanned symbols) -> iterable of AlignmentTransition``.
        A scanned symbol may be an ordinary symbol or an end marker.
    """

    def __init__(
        self,
        name: str,
        num_tapes: int,
        alphabet: Iterable[str],
        initial_state: str,
        accepting_states: Iterable[str],
        transitions: Mapping[Tuple[str, Tuple[str, ...]], Iterable[AlignmentTransition]],
    ):
        if num_tapes < 1:
            raise TransducerDefinitionError("an alignment automaton needs at least one tape")
        self.name = name
        self.num_tapes = num_tapes
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self.initial_state = initial_state
        self.accepting_states = frozenset(accepting_states)
        self.transitions: Dict[Tuple[str, Tuple[str, ...]], Tuple[AlignmentTransition, ...]] = {
            key: tuple(choices) for key, choices in transitions.items()
        }
        self._validate()

    def _validate(self) -> None:
        for (state, scanned), choices in self.transitions.items():
            if len(scanned) != self.num_tapes:
                raise TransducerDefinitionError(
                    f"{self.name}: key {scanned!r} does not have {self.num_tapes} symbols"
                )
            for choice in choices:
                if len(choice.moves) != self.num_tapes:
                    raise TransducerDefinitionError(
                        f"{self.name}: transition from {state!r} has "
                        f"{len(choice.moves)} moves, expected {self.num_tapes}"
                    )
                for symbol, move in zip(scanned, choice.moves):
                    if symbol == LEFT_MARKER and move == LEFT:
                        raise TransducerDefinitionError(
                            f"{self.name}: transition from {state!r} moves a head "
                            "left of the left end marker"
                        )
                    if symbol == RIGHT_MARKER and move == RIGHT:
                        raise TransducerDefinitionError(
                            f"{self.name}: transition from {state!r} moves a head "
                            "right of the right end marker"
                        )

    def __repr__(self) -> str:
        return (
            f"AlignmentAutomaton({self.name!r}, tapes={self.num_tapes}, "
            f"states~{len({state for state, _ in self.transitions} | self.accepting_states)})"
        )

    # ------------------------------------------------------------------
    # Acceptance
    # ------------------------------------------------------------------
    def accepts(self, *inputs) -> bool:
        """True iff some computation path accepts the tuple of sequences.

        The search explores the (finite) configuration graph breadth-first,
        so it terminates even when individual runs could loop forever -- the
        evaluation difficulty the paper attributes to the nondeterministic
        two-way model concerns query answering (finding *which* tuples are
        accepted over an infinite universe), not this membership check.
        """
        if len(inputs) != self.num_tapes:
            raise TransducerRuntimeError(
                f"{self.name}: expected {self.num_tapes} sequences, got {len(inputs)}"
            )
        tapes = [
            LEFT_MARKER + as_sequence(value).text + RIGHT_MARKER for value in inputs
        ]
        # Every head starts on the left end marker (cell 0).
        start = (self.initial_state, (0,) * self.num_tapes)
        if self.initial_state in self.accepting_states:
            return True
        seen: Set[Tuple[str, Tuple[int, ...]]] = {start}
        frontier = deque([start])
        while frontier:
            state, positions = frontier.popleft()
            scanned = tuple(
                tape[position] for tape, position in zip(tapes, positions)
            )
            for choice in self.transitions.get((state, scanned), ()):
                next_positions = tuple(
                    position + _MOVES[move]
                    for position, move in zip(positions, choice.moves)
                )
                successor = (choice.next_state, next_positions)
                if successor in seen:
                    continue
                if choice.next_state in self.accepting_states:
                    return True
                seen.add(successor)
                frontier.append(successor)
        return False

    def accepted_tuples(self, *relations: Iterable) -> Set[Tuple[str, ...]]:
        """Filter the cartesian product of unary relations by acceptance.

        This is how an acceptor is used as a query device over a *database*
        (active-domain evaluation); it cannot construct sequences that are
        not already stored, which is the limitation Section 1.1 points out.
        """
        from itertools import product

        results: Set[Tuple[str, ...]] = set()
        pools = [[as_sequence(value).text for value in relation] for relation in relations]
        for combination in product(*pools):
            if self.accepts(*combination):
                results.add(tuple(combination))
        return results


class AlignmentBuilder:
    """Incrementally build an :class:`AlignmentAutomaton`."""

    def __init__(self, name: str, num_tapes: int, alphabet: Iterable[str]):
        self.name = name
        self.num_tapes = num_tapes
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self._transitions: Dict[Tuple[str, Tuple[str, ...]], List[AlignmentTransition]] = {}
        self._accepting: Set[str] = set()

    def add(
        self,
        state: str,
        scanned: Iterable[str],
        next_state: str,
        moves: Iterable[str],
    ) -> AlignmentBuilder:
        key = (state, tuple(scanned))
        self._transitions.setdefault(key, []).append(
            AlignmentTransition(next_state=next_state, moves=tuple(moves))
        )
        return self

    def accept(self, *states: str) -> AlignmentBuilder:
        self._accepting.update(states)
        return self

    def build(self, initial_state: str) -> AlignmentAutomaton:
        return AlignmentAutomaton(
            name=self.name,
            num_tapes=self.num_tapes,
            alphabet=self.alphabet,
            initial_state=initial_state,
            accepting_states=self._accepting,
            transitions=self._transitions,
        )


# ----------------------------------------------------------------------
# Standard acceptors
# ----------------------------------------------------------------------
def equal_sequences_acceptor(alphabet: Iterable[str]) -> AlignmentAutomaton:
    """Accept pairs ``(x, y)`` with ``x = y`` (symbol-by-symbol comparison)."""
    symbols = tuple(dict.fromkeys(alphabet))
    builder = AlignmentBuilder("equal", num_tapes=2, alphabet=symbols)
    builder.add("scan", (LEFT_MARKER, LEFT_MARKER), "scan", (RIGHT, RIGHT))
    for symbol in symbols:
        builder.add("scan", (symbol, symbol), "scan", (RIGHT, RIGHT))
    builder.add("scan", (RIGHT_MARKER, RIGHT_MARKER), "yes", (STAY_PUT, STAY_PUT))
    builder.accept("yes")
    return builder.build(initial_state="scan")


def suffix_acceptor(alphabet: Iterable[str]) -> AlignmentAutomaton:
    """Accept pairs ``(x, y)`` where ``y`` is a suffix of ``x``.

    The automaton nondeterministically skips a prefix of ``x`` (this is where
    two-way/nondeterministic power is *not* even needed) and then compares
    the remainder against ``y``.
    """
    symbols = tuple(dict.fromkeys(alphabet))
    builder = AlignmentBuilder("suffix", num_tapes=2, alphabet=symbols)
    builder.add("skip", (LEFT_MARKER, LEFT_MARKER), "skip", (RIGHT, STAY_PUT))
    for symbol in symbols:
        # Either keep skipping the prefix of x, or start matching.
        builder.add("skip", (symbol, LEFT_MARKER), "skip", (RIGHT, STAY_PUT))
        builder.add("skip", (symbol, LEFT_MARKER), "match", (STAY_PUT, RIGHT))
    # x exhausted while still skipping: y must be empty.
    builder.add("skip", (RIGHT_MARKER, LEFT_MARKER), "match", (STAY_PUT, RIGHT))
    for symbol in symbols:
        builder.add("match", (symbol, symbol), "match", (RIGHT, RIGHT))
    builder.add("match", (RIGHT_MARKER, RIGHT_MARKER), "yes", (STAY_PUT, STAY_PUT))
    builder.accept("yes")
    return builder.build(initial_state="skip")


def subsequence_acceptor(alphabet: Iterable[str]) -> AlignmentAutomaton:
    """Accept pairs ``(x, y)`` where ``y`` is a *scattered* subsequence of ``x``."""
    symbols = tuple(dict.fromkeys(alphabet))
    builder = AlignmentBuilder("scattered_subsequence", num_tapes=2, alphabet=symbols)
    builder.add("scan", (LEFT_MARKER, LEFT_MARKER), "scan", (RIGHT, RIGHT))
    for x_symbol in symbols:
        for y_symbol in symbols + (RIGHT_MARKER,):
            if x_symbol == y_symbol:
                builder.add("scan", (x_symbol, y_symbol), "scan", (RIGHT, RIGHT))
            # Always allowed: drop the current symbol of x.
            builder.add("scan", (x_symbol, y_symbol), "scan", (RIGHT, STAY_PUT))
    builder.add("scan", (RIGHT_MARKER, RIGHT_MARKER), "yes", (STAY_PUT, STAY_PUT))
    for x_symbol in symbols:
        builder.add("scan", (x_symbol, RIGHT_MARKER), "scan", (RIGHT, STAY_PUT))
    builder.accept("yes")
    return builder.build(initial_state="scan")


def anbncn_acceptor() -> AlignmentAutomaton:
    """Accept ``(x, x)`` pairs where ``x`` is of the form ``a^n b^n c^n``.

    Alignment logic evaluates formulas over *tuples* of sequences, so
    recognizing a unary pattern with a two-head device is done by feeding
    the same sequence on both tapes (the benchmark and tests do exactly
    that via :func:`accepts_anbncn`).  Head 1 compares the a-block with the
    b-block while head 2 lags behind; then head 2 compares the b-block with
    the c-block.  Both heads only ever move right, but across the two tapes
    they implement the two comparison passes a single one-way head cannot do.
    """
    builder = AlignmentBuilder("anbncn", num_tapes=2, alphabet="abc")
    # Initialise: move both heads onto the first symbol.
    builder.add("init", (LEFT_MARKER, LEFT_MARKER), "count_a", (RIGHT, RIGHT))
    # Empty word: accept.
    builder.add("count_a", (RIGHT_MARKER, RIGHT_MARKER), "yes", (STAY_PUT, STAY_PUT))
    # Phase 1: head 1 scans the a-block; head 2 stays on the first symbol.
    builder.add("count_a", ("a", "a"), "count_a", (RIGHT, STAY_PUT))
    # Head 1 reaches the first b: start matching a's (head 2) against b's
    # (head 1) one for one.
    builder.add("count_a", ("b", "a"), "match_ab", (STAY_PUT, STAY_PUT))
    # Phase 2: consume one b on head 1 and one a on head 2 per step.
    builder.add("match_ab", ("b", "a"), "match_ab", (RIGHT, RIGHT))
    # Head 2 reaches the first b exactly when head 1 reaches the first c:
    # blocks of a and b have equal length.
    builder.add("match_ab", ("c", "b"), "match_bc", (STAY_PUT, STAY_PUT))
    # Phase 3: consume one c on head 1 and one b on head 2 per step.
    builder.add("match_bc", ("c", "b"), "match_bc", (RIGHT, RIGHT))
    # Head 1 reaches the right end marker exactly when head 2 reaches the
    # first c: blocks of b and c have equal length.
    builder.add("match_bc", (RIGHT_MARKER, "c"), "tail_c", (STAY_PUT, RIGHT))
    # Phase 4: head 2 verifies that only c's remain until the end.
    builder.add("tail_c", (RIGHT_MARKER, "c"), "tail_c", (STAY_PUT, RIGHT))
    builder.add("tail_c", (RIGHT_MARKER, RIGHT_MARKER), "yes", (STAY_PUT, STAY_PUT))
    builder.accept("yes")
    return builder.build(initial_state="init")


def accepts_anbncn(word) -> bool:
    """Convenience wrapper: run the two-head acceptor on ``(word, word)``."""
    return anbncn_acceptor().accepts(word, word)
