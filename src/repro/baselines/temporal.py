"""A temporal-logic list query evaluator (the Richardson [27] baseline).

Section 1.1 of the paper discusses the proposal of [27], where temporal
logic is used as the basis of a list query language: "conceptually, each
successive position in a list is interpreted as a successive instance in
time", so temporal predicates investigate properties of lists.  The paper
then notes the limitation (due to Wolper [36]) that temporal logic cannot
express simple properties such as "a certain predicate is true at every
*even* position of a list" or "a sequence contains one or more copies of
another sequence".

This module implements propositional linear temporal logic over *finite*
sequences (finite-trace LTL), which is the core of that proposal:

* atomic propositions test the symbol at the current position
  (:class:`Proposition`);
* Boolean connectives :class:`Not`, :class:`And`, :class:`Or`;
* temporal connectives :class:`Next`, :class:`Until`, and the derived
  :class:`Eventually` and :class:`Always`.

Finite-trace conventions: ``Next φ`` is false at the last position (the
"strong next"), ``Always φ`` means φ holds from the current position to the
end, and the empty sequence satisfies ``Always φ`` vacuously and never
satisfies ``Eventually φ``.

The evaluator is used by tests and ``benchmarks/bench_baselines.py`` to
compare what the three Section 1.1 baselines and Sequence Datalog can say
about the same workloads.  Being propositional LTL over a fixed alphabet,
every formula defines a *star-free regular* language -- which is why the
even-position and repetition properties (both non-star-free or
non-regular) fall outside the formalism, exactly as the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.errors import ValidationError
from repro.sequences import as_sequence


class TemporalFormula:
    """Base class of finite-trace LTL formulas over sequence positions."""

    def holds_at(self, word: str, position: int) -> bool:
        """True iff the formula holds at 0-based ``position`` of ``word``.

        ``position == len(word)`` is allowed and represents the (empty)
        suffix past the end of the sequence.
        """
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: TemporalFormula) -> TemporalFormula:
        return And(self, other)

    def __or__(self, other: TemporalFormula) -> TemporalFormula:
        return Or(self, other)

    def __invert__(self) -> TemporalFormula:
        return Not(self)


@dataclass(frozen=True)
class Proposition(TemporalFormula):
    """The current symbol is one of ``symbols``."""

    symbols: FrozenSet[str]

    def __init__(self, symbols: Iterable[str]):
        cleaned = frozenset(symbols)
        if not cleaned:
            raise ValidationError("a proposition needs at least one symbol")
        for symbol in cleaned:
            if len(symbol) != 1:
                raise ValidationError(
                    f"propositions test single symbols, got {symbol!r}"
                )
        object.__setattr__(self, "symbols", cleaned)

    def holds_at(self, word: str, position: int) -> bool:
        return position < len(word) and word[position] in self.symbols

    def __str__(self) -> str:
        return "|".join(sorted(self.symbols))


def symbol(value: str) -> Proposition:
    """Shorthand for the proposition "the current symbol is ``value``"."""
    return Proposition([value])


@dataclass(frozen=True)
class Not(TemporalFormula):
    operand: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return not self.operand.holds_at(word, position)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(TemporalFormula):
    left: TemporalFormula
    right: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return self.left.holds_at(word, position) and self.right.holds_at(word, position)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(TemporalFormula):
    left: TemporalFormula
    right: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return self.left.holds_at(word, position) or self.right.holds_at(word, position)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Next(TemporalFormula):
    """Strong next: there is a next position and the operand holds there."""

    operand: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return position < len(word) and self.operand.holds_at(word, position + 1)

    def __str__(self) -> str:
        return f"X({self.operand})"


@dataclass(frozen=True)
class Until(TemporalFormula):
    """``left U right``: right eventually holds, left holds until then."""

    left: TemporalFormula
    right: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        for future in range(position, len(word) + 1):
            if self.right.holds_at(word, future):
                return True
            if not self.left.holds_at(word, future):
                return False
        return False

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True)
class Eventually(TemporalFormula):
    """``F φ``: φ holds at some position from here to the end."""

    operand: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return any(
            self.operand.holds_at(word, future)
            for future in range(position, len(word) + 1)
        )

    def __str__(self) -> str:
        return f"F({self.operand})"


@dataclass(frozen=True)
class Always(TemporalFormula):
    """``G φ``: φ holds at every position from here to the end of the list."""

    operand: TemporalFormula

    def holds_at(self, word: str, position: int) -> bool:
        return all(
            self.operand.holds_at(word, future)
            for future in range(position, len(word))
        )

    def __str__(self) -> str:
        return f"G({self.operand})"


@dataclass(frozen=True)
class AtEnd(TemporalFormula):
    """True exactly at the position just past the last element."""

    def holds_at(self, word: str, position: int) -> bool:
        return position >= len(word)

    def __str__(self) -> str:
        return "end"


# ----------------------------------------------------------------------
# Evaluation helpers
# ----------------------------------------------------------------------
def holds(formula: TemporalFormula, value) -> bool:
    """True iff the formula holds at the first position of the sequence."""
    return formula.holds_at(as_sequence(value).text, 0)


def evaluate(formula: TemporalFormula, relation: Iterable) -> List[str]:
    """The sequences of a unary relation satisfying the formula.

    This is the temporal list-query analogue of a Sequence Datalog
    pattern-matching query: select the stored lists with a given temporal
    property.  Like the alignment baseline, it can only *select* stored
    sequences; it cannot restructure them.
    """
    selected = []
    for value in relation:
        text = as_sequence(value).text
        if formula.holds_at(text, 0):
            selected.append(text)
    return sorted(selected)


def satisfying_positions(formula: TemporalFormula, value) -> List[int]:
    """All 1-based positions of the sequence at which the formula holds."""
    text = as_sequence(value).text
    return [
        position + 1
        for position in range(len(text))
        if formula.holds_at(text, position)
    ]


# ----------------------------------------------------------------------
# Ready-made formulas used by tests and the Section 1.1 benchmark
# ----------------------------------------------------------------------
def sorted_blocks_formula(order: Tuple[str, ...] = ("a", "b", "c")) -> TemporalFormula:
    """"The list consists of a block of a's, then b's, then c's" (the regular
    *shape* of Example 1.3 -- but temporal logic cannot also require the
    three blocks to have equal length, which is the point of the example)."""
    if len(order) < 2:
        raise ValidationError("need at least two block symbols")
    # "every position's symbol is >= every earlier position's symbol" over
    # the fixed order -- expressed as: G(b -> G !a) & G(c -> G !(a|b)) ...
    # where the implication p -> q is written !p | q.
    clauses: List[TemporalFormula] = [Always(Proposition(order))]
    for index in range(1, len(order)):
        later = Proposition(order[index:])
        earlier = Proposition(order[:index])
        # G( later -> G(not earlier) )  ==  G( !later | G(!earlier) )
        clauses.append(Always(Or(Not(later), Always(Not(earlier)))))
    formula = clauses[0]
    for clause in clauses[1:]:
        formula = And(formula, clause)
    return formula


def contains_symbol_formula(target: str) -> TemporalFormula:
    """"Some position carries ``target``" (a simple Eventually)."""
    return Eventually(symbol(target))


def ends_with_formula(suffix: str) -> TemporalFormula:
    """"The list ends with the word ``suffix``" (nested Next under Eventually)."""
    tail: TemporalFormula = AtEnd()
    for character in reversed(suffix):
        tail = And(symbol(character), Next(tail))
    return Eventually(tail)


def every_even_position_reference(value, target: str) -> bool:
    """The property the paper says temporal logic *cannot* express: ``target``
    holds at every even position (2nd, 4th, ...).  Provided as a plain-Python
    reference so tests and the benchmark can show Sequence Datalog expresses
    it while no formula here does."""
    text = as_sequence(value).text
    return all(text[position] == target for position in range(1, len(text), 2))
