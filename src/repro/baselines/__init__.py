"""Baselines from the related work discussed in Section 1.1 of the paper.

The paper positions Sequence Datalog against three earlier proposals for
querying sequence databases.  To make the comparisons in Section 1.1
executable, this package implements a faithful core of each proposal:

* :mod:`~repro.baselines.rs_operations` -- the pattern-based *extractors*
  and *mergers* (rs-operations) of Ginsburg and Wang [16, 34], the basis of
  the s-calculus / s-algebra.  Their safe fragment cannot express queries
  whose result length depends on the database (reverse, complement).
* :mod:`~repro.baselines.alignment` -- multi-tape, nondeterministic,
  two-way finite automata, the computational counterpart of the alignment
  logic of Grahne, Nykanen and Ukkonen [20].  They accept or reject tuples
  of sequences but do not construct new ones.
* :mod:`~repro.baselines.temporal` -- a temporal (LTL-style) list query
  evaluator in the spirit of Richardson [27], where successive positions of
  a sequence are successive time instants.  The paper notes it cannot
  express properties such as "p holds at every even position" or "X contains
  one or more copies of Y" [36].

Each baseline is used by ``benchmarks/bench_baselines.py`` to regenerate the
Section 1.1 comparison: which of the paper's motivating queries each
formalism can express, and at what cost.
"""

from repro.baselines.alignment import (
    AlignmentAutomaton,
    AlignmentTransition,
    LEFT,
    RIGHT,
    STAY_PUT,
    anbncn_acceptor,
    equal_sequences_acceptor,
    subsequence_acceptor,
    suffix_acceptor,
)
from repro.baselines.rs_operations import (
    Extractor,
    Merger,
    Pattern,
    PatternItem,
    literal,
    variable,
)
from repro.baselines.temporal import (
    Always,
    And,
    Eventually,
    Next,
    Not,
    Or,
    Proposition,
    TemporalFormula,
    Until,
    evaluate as evaluate_temporal,
    holds,
)

__all__ = [
    "AlignmentAutomaton",
    "AlignmentTransition",
    "Always",
    "And",
    "Eventually",
    "Extractor",
    "LEFT",
    "Merger",
    "Next",
    "Not",
    "Or",
    "Pattern",
    "PatternItem",
    "Proposition",
    "RIGHT",
    "STAY_PUT",
    "TemporalFormula",
    "Until",
    "anbncn_acceptor",
    "equal_sequences_acceptor",
    "evaluate_temporal",
    "holds",
    "literal",
    "subsequence_acceptor",
    "suffix_acceptor",
    "variable",
]
