"""rs-operations: pattern-based extractors and mergers (Ginsburg & Wang).

Section 1.1 of the paper describes the sequence logic of [16, 34], built on
*rs-operations*: every operation is either a **merger**, which uses a set of
patterns to merge a set of sequences into a new one, or an **extractor**,
which retrieves subsequences of a given sequence.  The s-calculus and
s-algebra are built on these operations, and their safe fragment cannot
express queries whose result length depends on the database (the reverse or
the complement of a sequence) -- which is precisely the motivation the paper
gives for Sequence Datalog's recursive construction.

This module implements the operational core of that proposal so the
comparison can be run:

* a :class:`Pattern` is a finite list of items, each a literal sequence or a
  named variable; a pattern *matches* a sequence when the sequence can be
  split into consecutive factors, one per item, with literals matching
  exactly and equal variables bound to equal factors;
* an :class:`Extractor` matches an input pattern against a sequence and
  emits, for every match, the concatenation described by an output pattern
  over the same variables (so it can only rearrange and duplicate bounded
  pieces of its input);
* a :class:`Merger` matches one input pattern per input sequence and emits
  the output-pattern concatenation of the combined bindings.

Both operations are *non-recursive*: the number of concatenations they
perform is fixed by the patterns, independent of the database -- the same
limitation the paper points out for stratified construction (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence as TypingSequence, Set, Tuple

from repro.errors import ValidationError
from repro.sequences import Sequence, as_sequence


@dataclass(frozen=True)
class PatternItem:
    """One item of a pattern: a literal factor or a named variable."""

    kind: str  # "literal" or "variable"
    value: str

    def __post_init__(self) -> None:
        if self.kind not in ("literal", "variable"):
            raise ValidationError(f"unknown pattern item kind {self.kind!r}")
        if self.kind == "variable" and not self.value:
            raise ValidationError("pattern variables need a non-empty name")

    def __str__(self) -> str:
        return self.value if self.kind == "variable" else f'"{self.value}"'


def literal(text: str) -> PatternItem:
    """A literal pattern item matching exactly ``text``."""
    return PatternItem("literal", text)


def variable(name: str) -> PatternItem:
    """A pattern variable; equal names must bind to equal factors."""
    return PatternItem("variable", name)


class Pattern:
    """A finite concatenation pattern over literals and variables.

    Examples
    --------
    The pattern ``(X, "b", X)`` matches ``aba`` with ``X = a`` and ``bbb``
    with ``X = b``, but does not match ``abc``.
    """

    def __init__(self, items: Iterable[PatternItem]):
        self.items: Tuple[PatternItem, ...] = tuple(items)
        if not self.items:
            raise ValidationError("a pattern needs at least one item")

    def variables(self) -> List[str]:
        """The distinct variable names, in order of first occurrence."""
        seen: List[str] = []
        for item in self.items:
            if item.kind == "variable" and item.value not in seen:
                seen.append(item.value)
        return seen

    def __str__(self) -> str:
        return " . ".join(str(item) for item in self.items)

    def __repr__(self) -> str:
        return f"Pattern({list(self.items)!r})"

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches(
        self, value, bindings: Optional[Dict[str, str]] = None
    ) -> Iterator[Dict[str, str]]:
        """Yield every binding of the pattern's variables against ``value``.

        ``bindings`` pre-binds some variables (used by mergers so that equal
        variables across different input patterns must agree).
        """
        text = as_sequence(value).text
        initial = dict(bindings or {})
        yield from self._match_items(0, text, initial)

    def _match_items(
        self, item_index: int, remaining: str, bindings: Dict[str, str]
    ) -> Iterator[Dict[str, str]]:
        if item_index == len(self.items):
            if not remaining:
                yield dict(bindings)
            return
        item = self.items[item_index]
        if item.kind == "literal":
            if remaining.startswith(item.value):
                yield from self._match_items(
                    item_index + 1, remaining[len(item.value):], bindings
                )
            return
        # Variable item.
        bound = bindings.get(item.value)
        if bound is not None:
            if remaining.startswith(bound):
                yield from self._match_items(
                    item_index + 1, remaining[len(bound):], bindings
                )
            return
        for split in range(len(remaining) + 1):
            bindings[item.value] = remaining[:split]
            yield from self._match_items(item_index + 1, remaining[split:], bindings)
        del bindings[item.value]

    def instantiate(self, bindings: Dict[str, str]) -> Sequence:
        """Build the sequence described by the pattern under ``bindings``."""
        parts: List[str] = []
        for item in self.items:
            if item.kind == "literal":
                parts.append(item.value)
            else:
                try:
                    parts.append(bindings[item.value])
                except KeyError:
                    raise ValidationError(
                        f"output pattern variable {item.value!r} is unbound"
                    ) from None
        return Sequence("".join(parts))


class Extractor:
    """An rs-operation extractor: retrieve rearrangements of factors.

    Given an *input pattern* and an *output pattern* over the same variables,
    the extractor applied to a sequence yields, for every way the input
    pattern matches the sequence, the instantiation of the output pattern.

    The canonical example from [16] is extracting the middle of a framed
    sequence: input pattern ``("<", X, ">")`` with output pattern ``(X,)``.
    """

    def __init__(self, input_pattern: Pattern, output_pattern: Pattern, name: str = "extract"):
        self.name = name
        self.input_pattern = input_pattern
        self.output_pattern = output_pattern
        unknown = set(output_pattern.variables()) - set(input_pattern.variables())
        if unknown:
            raise ValidationError(
                f"{name}: output pattern uses unbound variables {sorted(unknown)}"
            )

    def apply(self, value) -> Set[Sequence]:
        """All extractions from a single sequence."""
        results: Set[Sequence] = set()
        for bindings in self.input_pattern.matches(value):
            results.add(self.output_pattern.instantiate(bindings))
        return results

    def apply_relation(self, values: Iterable) -> Set[Sequence]:
        """Apply the extractor to every sequence of a unary relation."""
        results: Set[Sequence] = set()
        for value in values:
            results |= self.apply(value)
        return results

    def __repr__(self) -> str:
        return f"Extractor({self.name!r}: {self.input_pattern} => {self.output_pattern})"


class Merger:
    """An rs-operation merger: combine several sequences by patterns.

    A merger has one input pattern per input sequence and a single output
    pattern; variables shared between input patterns must bind to equal
    factors (this is how [16] expresses joins on sequence content).  The
    number of concatenations performed is fixed by the output pattern, so a
    merger -- like stratified construction in Section 5 of the paper --
    cannot express restructurings whose length depends on the data, such as
    reverse or complement.
    """

    def __init__(
        self,
        input_patterns: TypingSequence[Pattern],
        output_pattern: Pattern,
        name: str = "merge",
    ):
        self.name = name
        self.input_patterns = tuple(input_patterns)
        self.output_pattern = output_pattern
        if not self.input_patterns:
            raise ValidationError(f"{name}: a merger needs at least one input pattern")
        available: Set[str] = set()
        for pattern in self.input_patterns:
            available |= set(pattern.variables())
        unknown = set(output_pattern.variables()) - available
        if unknown:
            raise ValidationError(
                f"{name}: output pattern uses unbound variables {sorted(unknown)}"
            )

    @property
    def arity(self) -> int:
        return len(self.input_patterns)

    def apply(self, *values) -> Set[Sequence]:
        """All merges of one tuple of input sequences."""
        if len(values) != self.arity:
            raise ValidationError(
                f"{self.name}: expected {self.arity} sequences, got {len(values)}"
            )
        results: Set[Sequence] = set()
        for bindings in self._joint_matches(0, {}, values):
            results.add(self.output_pattern.instantiate(bindings))
        return results

    def _joint_matches(
        self, index: int, bindings: Dict[str, str], values: Tuple
    ) -> Iterator[Dict[str, str]]:
        if index == self.arity:
            yield dict(bindings)
            return
        pattern = self.input_patterns[index]
        for extended in pattern.matches(values[index], bindings):
            yield from self._joint_matches(index + 1, extended, values)

    def apply_relation(self, *relations: Iterable) -> Set[Sequence]:
        """Apply the merger to the cartesian product of unary relations."""
        from itertools import product

        results: Set[Sequence] = set()
        for combination in product(*[list(relation) for relation in relations]):
            results |= self.apply(*combination)
        return results

    def __repr__(self) -> str:
        inputs = ", ".join(str(pattern) for pattern in self.input_patterns)
        return f"Merger({self.name!r}: [{inputs}] => {self.output_pattern})"


# ----------------------------------------------------------------------
# Ready-made operations used by tests and the Section 1.1 benchmark
# ----------------------------------------------------------------------
def concatenation_merger() -> Merger:
    """The merger expressing Example 1.2: concatenate two sequences."""
    return Merger(
        input_patterns=[Pattern([variable("X")]), Pattern([variable("Y")])],
        output_pattern=Pattern([variable("X"), variable("Y")]),
        name="concat",
    )


def prefix_extractor() -> Extractor:
    """Extract every prefix of a sequence (a length-dependent *set*, but each
    output is a factor of the input -- no new symbols are created)."""
    return Extractor(
        input_pattern=Pattern([variable("P"), variable("Rest")]),
        output_pattern=Pattern([variable("P")]),
        name="prefixes",
    )


def suffix_extractor() -> Extractor:
    """Extract every suffix of a sequence (Example 1.1 expressed with
    rs-operations)."""
    return Extractor(
        input_pattern=Pattern([variable("Front"), variable("S")]),
        output_pattern=Pattern([variable("S")]),
        name="suffixes",
    )


def square_merger() -> Merger:
    """Merge a sequence with itself: ``X -> XX`` (Example 5.1's ``double``)."""
    return Merger(
        input_patterns=[Pattern([variable("X")])],
        output_pattern=Pattern([variable("X"), variable("X")]),
        name="double",
    )


def tandem_repeat_extractor() -> Extractor:
    """Detect an adjacent repeat: matches sequences of the form ``W W Rest``
    and extracts the repeated factor ``W`` (the non-empty ones are the
    interesting answers)."""
    return Extractor(
        input_pattern=Pattern([variable("W"), variable("W"), variable("Rest")]),
        output_pattern=Pattern([variable("W")]),
        name="tandem_repeat",
    )
